package sensorcq

// This file is the benchmark harness that regenerates every table and figure
// of the paper's evaluation (Section VI). Each benchmark runs the relevant
// scenario for the relevant approaches on the shared synthetic SensorScope
// workload and reports the paper's metrics as custom benchmark outputs:
//
//	sub-load/<approach>     number of forwarded queries (Figs. 4, 6, 8, 10)
//	event-load/<approach>   number of forwarded data units (Figs. 5, 7, 9, 11)
//	recall-%/<approach>     end-user event recall (Fig. 12)
//
// Absolute values depend on the synthetic trace (the original SensorScope
// data is not redistributable); what is expected to reproduce is the shape:
// which approach wins, by roughly what factor, and how the gap evolves with
// the number of injected subscriptions. EXPERIMENTS.md records a full run.
//
// By default the benchmarks run the scenarios at a reduced workload so that
// `go test -bench=.` finishes in minutes; set -benchscale=full for the
// paper's full workload (slow) or -benchscale=quick for a smoke test.

import (
	"flag"
	"fmt"
	"runtime"
	"testing"

	"sensorcq/internal/agg"
	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/stats"
	"sensorcq/internal/stores"
	"sensorcq/internal/subsume"
	"sensorcq/internal/topology"
)

var benchScale = flag.String("benchscale", "default", "benchmark workload scale: quick, default or full")

// scaled applies the -benchscale flag to a scenario.
func scaled(s experiment.Scenario) experiment.Scenario {
	switch *benchScale {
	case "full":
		return s
	case "quick":
		return experiment.QuickScale(s)
	default:
		return s.Scale(1, 0.4, 0.5)
	}
}

// runScenarioBenchmark runs one scenario once per benchmark iteration and
// reports the final-point metrics of every approach.
func runScenarioBenchmark(b *testing.B, s experiment.Scenario, approaches []experiment.ApproachID, withRecall bool) {
	b.Helper()
	s = scaled(s)
	opts := experiment.DefaultOptions()
	opts.Approaches = approaches
	opts.ComputeRecall = withRecall
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(s, &opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, series := range last.Approaches {
		final := series.Final()
		b.ReportMetric(float64(final.SubscriptionLoad), "sub-load/"+string(series.Approach))
		b.ReportMetric(float64(final.EventLoad), "event-load/"+string(series.Approach))
		if withRecall {
			b.ReportMetric(final.Recall*100, "recall-%/"+string(series.Approach))
		}
	}
}

// --- Figures 4 and 5: small-scale experiment (Section VI-C) ---

func BenchmarkFig4SubscriptionLoadSmall(b *testing.B) {
	runScenarioBenchmark(b, experiment.SmallScale(), experiment.AllDistributed(), false)
}

func BenchmarkFig5EventLoadSmall(b *testing.B) {
	runScenarioBenchmark(b, experiment.SmallScale(), experiment.AllDistributed(), false)
}

// --- Figures 6 and 7: medium-scale experiment with the centralized baseline ---

func BenchmarkFig6SubscriptionLoadMedium(b *testing.B) {
	runScenarioBenchmark(b, experiment.MediumScale(), experiment.All(), false)
}

func BenchmarkFig7EventLoadMedium(b *testing.B) {
	runScenarioBenchmark(b, experiment.MediumScale(), experiment.All(), false)
}

// --- Figures 8 and 9: large-scale experiment #1 (network size) ---

func BenchmarkFig8SubscriptionLoadLargeNet(b *testing.B) {
	runScenarioBenchmark(b, experiment.LargeScaleNetwork(), experiment.AllDistributed(), false)
}

func BenchmarkFig9EventLoadLargeNet(b *testing.B) {
	runScenarioBenchmark(b, experiment.LargeScaleNetwork(), experiment.AllDistributed(), false)
}

// --- Figures 10 and 11: large-scale experiment #2 (number of data sources) ---

func BenchmarkFig10SubscriptionLoadLargeSrc(b *testing.B) {
	runScenarioBenchmark(b, experiment.LargeScaleSources(), experiment.AllDistributed(), false)
}

func BenchmarkFig11EventLoadLargeSrc(b *testing.B) {
	runScenarioBenchmark(b, experiment.LargeScaleSources(), experiment.AllDistributed(), false)
}

// --- Figure 12: end-user event recall of Filter-Split-Forward ---

func BenchmarkFig12EventRecall(b *testing.B) {
	for _, s := range experiment.AllScenarios() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			runScenarioBenchmark(b, s, []experiment.ApproachID{experiment.FilterSplitForward}, true)
		})
	}
}

// --- Table I / Figure 3: the subscription-subsumption walkthrough ---

// BenchmarkTableISubsumptionExample measures the filter-split-forward
// processing of the three Table I subscriptions on the six-node walkthrough
// network (the functional behaviour is asserted by the unit tests in
// internal/core).
func BenchmarkTableISubsumptionExample(b *testing.B) {
	graph := topology.NewGraph(6)
	edges := [][2]topology.NodeID{{5, 4}, {4, 3}, {3, 0}, {3, 1}, {4, 2}}
	for _, e := range edges {
		if err := graph.AddEdge(e[0], e[1]); err != nil {
			b.Fatal(err)
		}
	}
	sensors := []struct {
		node topology.NodeID
		id   model.SensorID
		attr model.AttributeType
	}{
		{0, "a", model.AmbientTemperature},
		{1, "b", model.RelativeHumidity},
		{2, "c", model.WindSpeed},
	}
	mkSub := func(id string, ranges map[model.SensorID][2]float64) *model.Subscription {
		var filters []model.SensorFilter
		for d, r := range ranges {
			filters = append(filters, model.SensorFilter{Sensor: d, Range: NewInterval(r[0], r[1])})
		}
		sub, err := model.NewIdentifiedSubscription(model.SubscriptionID(id), filters, 30)
		if err != nil {
			b.Fatal(err)
		}
		return sub
	}
	subs := []*model.Subscription{
		mkSub("s1", map[model.SensorID][2]float64{"a": {50, 80}, "b": {10, 30}}),
		mkSub("s2", map[model.SensorID][2]float64{"b": {20, 40}, "c": {2, 20}}),
		mkSub("s3", map[model.SensorID][2]float64{"a": {55, 75}, "b": {15, 35}, "c": {5, 15}}),
	}
	factory, err := experiment.FactoryFor(experiment.FilterSplitForward, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var finalLoad int64
	for i := 0; i < b.N; i++ {
		engine := netsim.NewEngine(graph, factory)
		for _, sn := range sensors {
			if err := engine.AttachSensor(sn.node, model.Sensor{ID: sn.id, Attr: sn.attr}); err != nil {
				b.Fatal(err)
			}
		}
		for _, sub := range subs {
			if err := engine.Subscribe(5, sub.Clone()); err != nil {
				b.Fatal(err)
			}
		}
		finalLoad = engine.Metrics().SubscriptionLoad()
	}
	b.ReportMetric(float64(finalLoad), "sub-load")
}

// --- Table II ablations: the design choices that distinguish the approaches ---

// BenchmarkAblationSetFilterError sweeps the FSF set-filter error probability
// (the traffic/recall trade-off of Section VI-F).
func BenchmarkAblationSetFilterError(b *testing.B) {
	for _, errProb := range []float64{0.001, 0.02, 0.2} {
		errProb := errProb
		b.Run(fmt.Sprintf("err=%g", errProb), func(b *testing.B) {
			s := scaled(experiment.SmallScale())
			s.SetFilterError = errProb
			runScenarioBenchmark(b, s, []experiment.ApproachID{experiment.FilterSplitForward}, true)
		})
	}
}

// BenchmarkAblationBinaryJoinPairing compares the ring and chain binary-join
// pairings of the distributed multi-join competitor on identical inputs.
func BenchmarkAblationBinaryJoinPairing(b *testing.B) {
	for _, pairing := range []model.BinaryJoinPairing{model.RingPairing, model.ChainPairing} {
		pairing := pairing
		b.Run(pairing.String(), func(b *testing.B) {
			s := scaled(experiment.MediumScale())
			w, err := experiment.BuildWorkload(s)
			if err != nil {
				b.Fatal(err)
			}
			var load int64
			for i := 0; i < b.N; i++ {
				load = runMultiJoinOnce(b, w, pairing)
			}
			b.ReportMetric(float64(load), "event-load")
		})
	}
}

// runMultiJoinOnce replays a workload against the multi-join approach with
// an explicit pairing and returns the final event load.
func runMultiJoinOnce(b *testing.B, w *experiment.Workload, pairing model.BinaryJoinPairing) int64 {
	b.Helper()
	factory := multiJoinFactory(pairing)
	engine := netsim.NewEngine(w.Deployment.Graph, factory)
	for _, sensor := range w.Deployment.Sensors {
		if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range w.Placed {
		if err := engine.Subscribe(p.Node, p.Sub); err != nil {
			b.Fatal(err)
		}
	}
	for _, segment := range w.Segments {
		for _, ev := range segment {
			if err := engine.Publish(w.Deployment.SensorHost[ev.Sensor], ev); err != nil {
				b.Fatal(err)
			}
		}
	}
	return engine.Metrics().EventLoad()
}

// BenchmarkAblationLinkDedup compares per-neighbour (publish/subscribe) and
// per-subscription event forwarding with everything else held equal — the
// "event propagation" column of Table II in isolation.
func BenchmarkAblationLinkDedup(b *testing.B) {
	configs := map[string]netsim.HandlerFactory{
		"per-neighbor":     dedupFactory(true),
		"per-subscription": dedupFactory(false),
	}
	s := scaled(experiment.SmallScale())
	w, err := experiment.BuildWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	for name, factory := range configs {
		factory := factory
		b.Run(name, func(b *testing.B) {
			var load int64
			for i := 0; i < b.N; i++ {
				engine := netsim.NewEngine(w.Deployment.Graph, factory)
				for _, sensor := range w.Deployment.Sensors {
					if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
						b.Fatal(err)
					}
				}
				for _, p := range w.Placed {
					if err := engine.Subscribe(p.Node, p.Sub); err != nil {
						b.Fatal(err)
					}
				}
				for _, segment := range w.Segments {
					for _, ev := range segment {
						if err := engine.Publish(w.Deployment.SensorHost[ev.Sensor], ev); err != nil {
							b.Fatal(err)
						}
					}
				}
				load = engine.Metrics().EventLoad()
			}
			b.ReportMetric(float64(load), "event-load")
		})
	}
}

// --- index-vs-linear scaling: the event-matching fast path ---

// indexBenchPopulation builds n abstract subscriptions with medium-selective
// ranges (about 2% of the value domain each) over the five default
// attributes, plus a deterministic stream of probe events.
func indexBenchPopulation(n int) ([]*model.Subscription, []model.Event) {
	rng := stats.NewRNG(42)
	attrs := model.DefaultAttributes()
	subs := make([]*model.Subscription, 0, n)
	for i := 0; i < n; i++ {
		na := 1 + rng.Intn(3)
		picked := rng.Choose(len(attrs), na)
		filters := make([]model.AttributeFilter, 0, na)
		for _, a := range picked {
			lo := rng.Range(0, 980)
			filters = append(filters, model.AttributeFilter{
				Attr:  attrs[a],
				Range: NewInterval(lo, lo+rng.Range(5, 20)),
			})
		}
		sub, err := model.NewAbstractSubscription(
			model.SubscriptionID(fmt.Sprintf("ix%06d", i)),
			filters, Everywhere(), 30, model.NoSpatialConstraint)
		if err != nil {
			panic(err)
		}
		subs = append(subs, sub)
	}
	events := make([]model.Event, 512)
	for i := range events {
		a := rng.Intn(len(attrs))
		events[i] = model.Event{
			Seq:    uint64(i + 1),
			Sensor: model.SensorID(fmt.Sprintf("d%d", a)),
			Attr:   attrs[a],
			Value:  rng.Range(0, 1000),
			Time:   model.Timestamp(i),
		}
	}
	return subs, events
}

// BenchmarkEventMatchScaling compares the indexed candidate selection
// (stores.EventIndex, the fast path the protocol nodes now use) against the
// per-attribute linear scan it replaced, at growing subscription
// populations. The per-event cost of the linear scan grows with the
// population; the indexed cost grows with the number of actual matches.
func BenchmarkEventMatchScaling(b *testing.B) {
	for _, n := range []int{1000, 10000, 50000} {
		subs, events := indexBenchPopulation(n)

		b.Run(fmt.Sprintf("indexed/subs=%d", n), func(b *testing.B) {
			idx := stores.NewEventIndex()
			for _, s := range subs {
				idx.Add(s)
			}
			// Prime the lazy rebuild outside the timed region.
			idx.Candidates(events[0], func(*model.Subscription) bool { return true })
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Candidates(events[i%len(events)], func(*model.Subscription) bool {
					matches++
					return true
				})
			}
			b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
		})

		b.Run(fmt.Sprintf("linear/subs=%d", n), func(b *testing.B) {
			byAttr := map[model.AttributeType][]*model.Subscription{}
			for _, s := range subs {
				for _, a := range s.Attributes() {
					byAttr[a] = append(byAttr[a], s)
				}
			}
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := events[i%len(events)]
				for _, s := range byAttr[ev.Attr] {
					if s.MatchesEvent(ev) {
						matches++
					}
				}
			}
			b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
		})
	}
}

// BenchmarkIndexChurn measures the match index under steady-state
// subscription churn: every iteration retracts the oldest live subscription,
// registers a fresh one and matches an event — the interleaved
// subscribe/match/unsubscribe workload the PR 4 lifecycle API produces. The
// incremental index (stores.NewEventIndex) splices single entries in and out
// in O(log n); the rebuild baseline (stores.NewEventIndexRebuild) is the
// superseded maintenance branch — tombstoned removals with
// rebuild-on-half-dead compaction over lazily rebuilt interval trees — which
// pays a full rebuild whenever a match follows an insertion. Throughput is
// reported as lifecycle operations per second under the events/sec key so
// the benchgate regression gate covers it; the incremental/rebuild gap is
// the measured win of incremental maintenance.
func BenchmarkIndexChurn(b *testing.B) {
	const live = 4000
	pool, events := indexBenchPopulation(2 * live)
	impls := []struct {
		name string
		mk   func() *stores.EventIndex
	}{
		{"incremental", stores.NewEventIndex},
		{"rebuild", stores.NewEventIndexRebuild},
	}
	for _, impl := range impls {
		impl := impl
		b.Run(fmt.Sprintf("%s/subs=%d", impl.name, live), func(b *testing.B) {
			idx := impl.mk()
			for _, s := range pool[:live] {
				idx.Add(s)
			}
			// Prime any lazy structures outside the timed region.
			idx.Candidates(events[0], func(*model.Subscription) bool { return true })
			matches := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The live population is a sliding window over the pool:
				// pool[i..i+live-1] (mod 2*live) is live at iteration i.
				idx.Remove(pool[i%len(pool)].ID)
				idx.Add(pool[(i+live)%len(pool)])
				idx.Candidates(events[i%len(events)], func(*model.Subscription) bool {
					matches++
					return true
				})
			}
			b.StopTimer()
			if idx.Len() != live {
				b.Fatalf("live population drifted to %d, want %d", idx.Len(), live)
			}
			b.ReportMetric(float64(matches)/float64(b.N), "matches/op")
			// Three lifecycle operations per iteration: one retraction, one
			// registration, one match.
			b.ReportMetric(float64(b.N)*3/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkPublishBatchReplay compares per-event Publish against the
// batched replay path on the quick small-scale workload (full protocol
// stack, Filter-Split-Forward).
func BenchmarkPublishBatchReplay(b *testing.B) {
	s := experiment.QuickScale(experiment.SmallScale())
	w, err := experiment.BuildWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	var events []model.Event
	for _, segment := range w.Segments {
		events = append(events, segment...)
	}
	setup := func(b *testing.B) *netsim.Engine {
		b.Helper()
		factory, err := experiment.FactoryFor(experiment.FilterSplitForward, s.Seed+7, 0)
		if err != nil {
			b.Fatal(err)
		}
		engine := netsim.NewEngine(w.Deployment.Graph, factory)
		for _, sensor := range w.Deployment.Sensors {
			if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
				b.Fatal(err)
			}
		}
		for _, p := range w.Placed {
			if err := engine.Subscribe(p.Node, p.Sub.Clone()); err != nil {
				b.Fatal(err)
			}
		}
		return engine
	}
	b.Run("publish-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			engine := setup(b)
			b.StartTimer()
			for _, ev := range events {
				if err := engine.Publish(w.Deployment.SensorHost[ev.Sensor], ev); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("publish-batch", func(b *testing.B) {
		batch := make([]netsim.Publication, len(events))
		for i, ev := range events {
			batch[i] = netsim.Publication{Node: w.Deployment.SensorHost[ev.Sensor], Event: ev}
		}
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			engine := setup(b)
			b.StartTimer()
			if err := engine.PublishBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// replayThroughputWorkload builds the wide replay-benchmark workload: 100
// sensor nodes in 20 groups means every round spreads 100 readings across
// many independent subtrees, which is what gives the pipelined/windowed
// modes parallelism to exploit. The -benchscale=quick setting shrinks the
// subscription population and round count so the CI benchmark-regression
// job finishes fast.
func replayThroughputWorkload(b *testing.B) (*experiment.Workload, [][]netsim.Publication, int) {
	b.Helper()
	s := experiment.Scenario{
		Name:           "replay-throughput",
		TotalNodes:     120,
		SensorNodes:    100,
		Groups:         20,
		Batches:        1,
		BatchSize:      80,
		MinAttrs:       2,
		MaxAttrs:       4,
		RoundsPerBatch: 6,
		RoundInterval:  1800,
		Seed:           77,
	}
	if *benchScale == "quick" {
		s.BatchSize = 40
		s.RoundsPerBatch = 4
	}
	w, err := experiment.BuildWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	replay := w.PublicationRounds(0)
	events := 0
	for _, round := range replay {
		events += len(round)
	}
	return w, replay, events
}

// benchReplay replays the workload once per iteration under the given
// engine/delivery configuration and reports events/sec and GOMAXPROCS.
func benchReplay(b *testing.B, w *experiment.Workload, replay [][]netsim.Publication, events int, concurrent bool, opts netsim.ReplayOptions) {
	b.Helper()
	factory := func(b *testing.B) netsim.HandlerFactory {
		b.Helper()
		f, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
			Seed:           w.Scenario.Seed + 7,
			ValidityFactor: netsim.RequiredValidityFactor(opts.Mode, opts.Lag),
		})
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	prepare := func(b *testing.B, rt netsim.Runtime) {
		b.Helper()
		for _, sensor := range w.Deployment.Sensors {
			if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
				b.Fatal(err)
			}
			rt.Flush()
		}
		for _, p := range w.Placed {
			if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
				b.Fatal(err)
			}
			rt.Flush()
		}
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var rt netsim.Runtime
		var conc *netsim.ConcurrentEngine
		if concurrent {
			conc = netsim.NewConcurrentEngine(w.Deployment.Graph, factory(b))
			rt = conc
		} else {
			rt = netsim.NewEngine(w.Deployment.Graph, factory(b))
		}
		prepare(b, rt)
		b.StartTimer()
		if err := rt.ReplayRounds(replay, opts); err != nil {
			b.Fatal(err)
		}
		rt.Flush()
		b.StopTimer()
		if n := rt.Metrics().DroppedMessages(); n != 0 {
			b.Fatalf("dropped %d messages", n)
		}
		if conc != nil {
			conc.Close()
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	// The parallel speedup only exists with GOMAXPROCS > 1; report it so
	// single-core results are not misread as "pipelining does nothing".
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkReplayPipelined measures what the pipelined delivery mode buys on
// a wide topology: the same round-structured trace is replayed through the
// concurrent engine under quiescent semantics (the network drains after
// every single event, so the per-node goroutines take turns) and pipelined
// semantics (a whole round is in flight at once, so they genuinely run in
// parallel), plus the sequential engine as the single-core reference. The
// events/sec metric is the replay throughput; on a multi-core machine the
// pipelined concurrent replay should beat the quiescent concurrent replay
// by well over 2x.
func BenchmarkReplayPipelined(b *testing.B) {
	w, replay, events := replayThroughputWorkload(b)
	bench := func(concurrent bool, mode netsim.DeliveryMode) func(*testing.B) {
		return func(b *testing.B) {
			benchReplay(b, w, replay, events, concurrent, netsim.ReplayOptions{Mode: mode})
		}
	}
	b.Run("concurrent-quiescent", bench(true, netsim.Quiescent))
	b.Run("concurrent-pipelined", bench(true, netsim.Pipelined))
	b.Run("sequential-quiescent", bench(false, netsim.Quiescent))
	b.Run("sequential-pipelined", bench(false, netsim.Pipelined))
}

// BenchmarkReplayWindowed sweeps the cross-round pipelining bound of the
// windowed delivery mode on the concurrent engine. Lag 0 is the pipelined
// schedule (drain at every round boundary); higher lags let the per-node
// goroutines keep working across round boundaries, which removes the
// round-barrier idle time on multi-core machines (run with -cpu 1,2,4 to
// see the effect appear with parallelism). Deliveries and traffic stay
// conformant with the quiescent baseline at every lag — that is enforced
// by TestPipelinedConformanceAllApproaches, not measured here.
func BenchmarkReplayWindowed(b *testing.B) {
	w, replay, events := replayThroughputWorkload(b)
	for _, lag := range []int{0, 1, 2, 4} {
		lag := lag
		b.Run(fmt.Sprintf("lag=%d", lag), func(b *testing.B) {
			benchReplay(b, w, replay, events, true, netsim.ReplayOptions{Mode: netsim.Windowed, Lag: lag})
		})
	}
}

// wideTopologyWorkload builds the topology-scale sweep workload: the node
// count grows into the ten-thousands while the sensor population, the
// subscription population and the trace stay fixed, so what the benchmark
// scales is the engine's cost of carrying a wide topology — execution
// contexts, wakeups, scheduler churn — not the traffic itself.
func wideTopologyWorkload(b *testing.B, nodes int) (*experiment.Workload, [][]netsim.Publication, int) {
	b.Helper()
	s := experiment.Scenario{
		Name:           fmt.Sprintf("wide-topology-%d", nodes),
		TotalNodes:     nodes,
		SensorNodes:    32,
		Groups:         8,
		Batches:        1,
		BatchSize:      16,
		MinAttrs:       2,
		MaxAttrs:       4,
		RoundsPerBatch: 6,
		RoundInterval:  1800,
		Seed:           77,
	}
	w, err := experiment.BuildWorkload(s)
	if err != nil {
		b.Fatal(err)
	}
	replay := w.PublicationRounds(0)
	events := 0
	for _, round := range replay {
		events += len(round)
	}
	return w, replay, events
}

// BenchmarkReplayWideTopology sweeps the topology size under the pooled
// work-stealing scheduler and under the legacy goroutine-per-node baseline
// (NewConcurrentEngineGoroutinePerNode). Unlike benchReplay, the engine
// lifecycle — construction, replay, Close — is deliberately inside the
// timed region: at 10k+ nodes the cost under attack IS the per-node
// execution contexts (16k goroutine spawns, stacks and teardowns per run),
// which the pooled scheduler replaces with GOMAXPROCS workers. The pooled
// engine must match the baseline at 1k nodes and pull away as the topology
// widens.
func BenchmarkReplayWideTopology(b *testing.B) {
	for _, nodes := range []int{1000, 4000, 16000} {
		w, replay, events := wideTopologyWorkload(b, nodes)
		for _, engine := range []string{"pooled", "goroutines"} {
			engine := engine
			b.Run(fmt.Sprintf("%s/nodes=%d", engine, nodes), func(b *testing.B) {
				factory, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
					Seed: w.Scenario.Seed + 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var conc *netsim.ConcurrentEngine
					if engine == "pooled" {
						conc = netsim.NewConcurrentEngine(w.Deployment.Graph, factory)
					} else {
						conc = netsim.NewConcurrentEngineGoroutinePerNode(w.Deployment.Graph, factory)
					}
					for _, sensor := range w.Deployment.Sensors {
						if err := conc.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
							b.Fatal(err)
						}
					}
					conc.Flush()
					for _, p := range w.Placed {
						if err := conc.Subscribe(p.Node, p.Sub.Clone()); err != nil {
							b.Fatal(err)
						}
					}
					conc.Flush()
					if err := conc.ReplayRounds(replay, netsim.ReplayOptions{Mode: netsim.Pipelined}); err != nil {
						b.Fatal(err)
					}
					conc.Flush()
					if n := conc.Metrics().DroppedMessages(); n != 0 {
						b.Fatalf("dropped %d messages", n)
					}
					conc.Close()
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}

// BenchmarkSubscriptionChurn measures the subscription-lifecycle hot path:
// full subscribe → network-wide unsubscribe round-trips over the wide
// replay-benchmark topology, each operation fully propagated (subscription
// split-and-forward on the way in, retraction walking the recorded reverse
// forwarding paths — including covered-operator re-exposure — on the way
// out). Throughput is reported as lifecycle operations per second under the
// standard events/sec key so the benchgate regression gate covers churn
// alongside the replay benchmarks.
func BenchmarkSubscriptionChurn(b *testing.B) {
	w, _, _ := replayThroughputWorkload(b)
	bench := func(concurrent bool) func(*testing.B) {
		return func(b *testing.B) {
			factory, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
				Seed: w.Scenario.Seed + 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			var rt netsim.Runtime
			if concurrent {
				conc := netsim.NewConcurrentEngine(w.Deployment.Graph, factory)
				defer conc.Close()
				rt = conc
			} else {
				rt = netsim.NewEngine(w.Deployment.Graph, factory)
			}
			for _, sensor := range w.Deployment.Sensors {
				if err := rt.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
					b.Fatal(err)
				}
				rt.Flush()
			}
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				for _, p := range w.Placed {
					if err := rt.Subscribe(p.Node, p.Sub.Clone()); err != nil {
						b.Fatal(err)
					}
					rt.Flush()
					ops++
				}
				for _, p := range w.Placed {
					if err := rt.Unsubscribe(p.Node, p.Sub.ID); err != nil {
						b.Fatal(err)
					}
					rt.Flush()
					ops++
				}
			}
			b.StopTimer()
			if n := rt.Metrics().DroppedMessages(); n != 0 {
				b.Fatalf("dropped %d messages", n)
			}
			if rt.Metrics().UnsubscriptionLoad() == 0 {
				b.Fatal("churn generated no retraction traffic")
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		}
	}
	b.Run("sequential", bench(false))
	b.Run("concurrent", bench(true))
}

// BenchmarkSubscriptionFlood measures bulk registration of large subscription
// populations. The stack variants flood a fresh Filter-Split-Forward network
// with n user subscriptions — full split-and-forward propagation, one
// injection at a time, the way the serving layer registers them — and then
// publish one probe event, which triggers the staged bottom-up build of the
// match indexes the flood populated (registration only stages; no tree is
// built until an event needs one). The index variants isolate the build
// itself on one index: index-bulk stages all n subscriptions and packs each
// tree bottom-up on the first lookup (stores.EventIndex.BulkLoad),
// index-incremental (stores.NewEventIndexEager) pays one tree descent per
// insertion. Bulk loading should win clearly from 10k subscriptions up.
func BenchmarkSubscriptionFlood(b *testing.B) {
	// The full-stack flood pays the real protocol cost per registration —
	// including the per-origin subsumption scan, which is quadratic in the
	// population — so sizes beyond 1k are reserved for -benchscale=full; the
	// index variants cover all three sizes at every scale.
	stackSizes := []int{1000}
	if *benchScale == "full" {
		stackSizes = []int{1000, 10000, 50000}
	}
	w, _, _ := replayThroughputWorkload(b)
	for _, n := range stackSizes {
		subs, events := indexBenchPopulation(n)
		b.Run(fmt.Sprintf("stack/subs=%d", n), func(b *testing.B) {
			nodes := w.Deployment.Graph.NumNodes()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				factory, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
					Seed: w.Scenario.Seed + 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				engine := netsim.NewEngine(w.Deployment.Graph, factory)
				for _, sensor := range w.Deployment.Sensors {
					if err := engine.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for j, sub := range subs {
					if err := engine.Subscribe(topology.NodeID(j%nodes), sub); err != nil {
						b.Fatal(err)
					}
				}
				if err := engine.Publish(0, events[0]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(subs))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
	for _, n := range []int{1000, 10000, 50000} {
		subs, events := indexBenchPopulation(n)
		probe := events[0]
		b.Run(fmt.Sprintf("index-bulk/subs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := stores.NewEventIndex()
				idx.BulkLoad(subs)
				idx.Candidates(probe, func(*model.Subscription) bool { return true })
			}
		})
		b.Run(fmt.Sprintf("index-incremental/subs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := stores.NewEventIndexEager()
				for _, s := range subs {
					idx.Add(s)
				}
				idx.Candidates(probe, func(*model.Subscription) bool { return true })
			}
		})
	}
}

// BenchmarkReplaySteadyState measures the steady state of a long-lived
// windowed session on the sequential engine: a pre-warmed subscription
// population, an open KeepOpen session (lag 2), and the same round-structured
// trace replayed per iteration with timestamps shifted forward one full trace
// span — a seamless continuation of the session, with the window pruning old
// rounds as new ones arrive. Sequence numbers are deliberately reused so the
// per-subscription delivered-sequence sets stay at their steady-state size
// (the window dedups on (time, seq), so shifted reuses are new events to it).
// After warm-up, Engine.Preallocate sizes the delivery log, its
// per-subscription index, the per-node delivery arenas and the per-round
// metric counters for the whole measured run, so the timed region performs
// zero heap allocations — the baseline is gated at exactly 0 allocs/op by
// benchgate's strict zero rule.
func BenchmarkReplaySteadyState(b *testing.B) {
	w, replay, events := replayThroughputWorkload(b)
	factory, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
		Seed:           w.Scenario.Seed + 7,
		ValidityFactor: netsim.RequiredValidityFactor(netsim.Windowed, 2),
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := netsim.NewEngine(w.Deployment.Graph, factory)
	for _, sensor := range w.Deployment.Sensors {
		if err := eng.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range w.Placed {
		if err := eng.Subscribe(p.Node, p.Sub.Clone()); err != nil {
			b.Fatal(err)
		}
	}
	opts := netsim.ReplayOptions{Mode: netsim.Windowed, Lag: 2, KeepOpen: true}
	shift := model.Timestamp(len(replay)) * w.Scenario.RoundInterval
	advance := func() {
		for _, round := range replay {
			for i := range round {
				round[i].Event.Time += shift
			}
		}
	}
	// Warm up to the allocation fixed point: the first sessions populate the
	// lazy structures (staged index builds, dedup-key interning, scratch
	// buffers, queue backing storage) and ratchet the recycled buffers —
	// window sent-lists, free lists, per-node scratch — up to their
	// steady-state high-water marks. Capacity growth tails off over several
	// sessions rather than stopping after one, so the warm-up measures itself:
	// it stops only after a whole session completes without a single heap
	// allocation, which is the state the timed region is meant to measure.
	var ms runtime.MemStats
	for k := 0; k < 64; k++ {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		if err := eng.ReplayRounds(replay, opts); err != nil {
			b.Fatal(err)
		}
		advance()
		runtime.ReadMemStats(&ms)
		if k >= 2 && ms.Mallocs == before {
			break
		}
	}
	eng.Preallocate(b.N + 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ReplayRounds(replay, opts); err != nil {
			b.Fatal(err)
		}
		advance()
	}
	b.StopTimer()
	eng.Flush()
	if n := eng.Metrics().DroppedMessages(); n != 0 {
		b.Fatalf("dropped %d messages", n)
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkAggregateReplay measures the windowed aggregation data path on the
// sequential engine over the wide replay topology: one continuous median
// query, the full round-structured trace, every window closed by the
// watermark. The in-network variant merges q-digest partials up the
// dissemination tree (one partial per tree edge per window); the ship-all
// variant is the Exact baseline that relays every matching reading hop by hop
// to the subscriber and aggregates there. events/sec is the replay
// throughput; msgs-up and bytes-up report each variant's upstream
// partial-aggregate traffic per replay, so the run itself shows the traffic
// gap the aggregation subsystem exists to open.
func BenchmarkAggregateReplay(b *testing.B) {
	w, replay, events := replayThroughputWorkload(b)
	counts := map[model.AttributeType]int{}
	for _, s := range w.Deployment.Sensors {
		counts[s.Attr]++
	}
	var attr model.AttributeType
	for a, n := range counts {
		if attr == "" || n > counts[attr] || (n == counts[attr] && a < attr) {
			attr = a
		}
	}
	lo, hi := w.Trace.Mins[attr], w.Trace.Maxs[attr]
	if !(lo < hi) {
		lo, hi = lo-1, hi+1
	}
	bench := func(spec model.AggregateSpec) func(*testing.B) {
		return func(b *testing.B) {
			sub, err := model.NewAggregateSubscription("agg-bench",
				model.AttributeFilter{Attr: attr, Range: NewInterval(lo, hi)}, Everywhere(), spec)
			if err != nil {
				b.Fatal(err)
			}
			var load, bytes int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				factory, err := experiment.FactoryForSpec(experiment.FilterSplitForward, experiment.FactorySpec{
					Seed: w.Scenario.Seed + 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				eng := netsim.NewEngine(w.Deployment.Graph, factory)
				for _, sensor := range w.Deployment.Sensors {
					if err := eng.AttachSensor(w.Deployment.SensorHost[sensor.ID], sensor); err != nil {
						b.Fatal(err)
					}
				}
				eng.Flush()
				if err := eng.Subscribe(0, sub.Clone()); err != nil {
					b.Fatal(err)
				}
				eng.Flush()
				b.StartTimer()
				if err := eng.ReplayRounds(replay, netsim.ReplayOptions{Mode: netsim.Quiescent}); err != nil {
					b.Fatal(err)
				}
				eng.Flush()
				b.StopTimer()
				if n := eng.Metrics().DroppedMessages(); n != 0 {
					b.Fatalf("dropped %d messages", n)
				}
				load = eng.Metrics().Snapshot().PartialAggregateLoad
				bytes = eng.Metrics().PartialAggregateBytes()
				if load == 0 {
					b.Fatal("replay shipped no partial aggregates; the benchmark is vacuous")
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(load), "msgs-up")
			b.ReportMetric(float64(bytes), "bytes-up")
		}
	}
	b.Run("in-network", bench(model.AggregateSpec{
		Func: agg.Quantile, WindowRounds: 2, Quantile: 0.5, Lo: lo, Hi: hi, Bits: 10, K: 32,
	}))
	b.Run("ship-all", bench(model.AggregateSpec{
		Func: agg.Quantile, WindowRounds: 2, Quantile: 0.5, Exact: true,
	}))
}

var qdigestBenchSink int64

// BenchmarkQDigestMerge measures the sketch primitive of the aggregation
// subsystem: merging a compressed child q-digest into an accumulating parent
// and re-compressing for the upstream ship — the per-node, per-window work a
// dissemination-tree hop performs. The compression parameter k trades sketch
// size for rank error (ε = Bits/k), so the two settings bound the cheap and
// the accurate end of the sweep the experiment runs.
func BenchmarkQDigestMerge(b *testing.B) {
	for _, k := range []int{16, 64} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			cfg := agg.Config{Func: agg.Quantile, Quantile: 0.5, Lo: 0, Hi: 4096, Bits: 12, K: k}
			if err := cfg.Validate(); err != nil {
				b.Fatal(err)
			}
			// Deterministic pseudo-random readings from a bare LCG; the
			// bucket distribution is what drives compression cost.
			v := uint64(1)
			next := func() float64 {
				v = v*6364136223846793005 + 1442695040888963407
				return float64(v >> 52)
			}
			child := agg.NewQDigest(cfg)
			for i := 0; i < 4096; i++ {
				child.Add(next())
			}
			child.Compress()
			parent := agg.NewQDigest(cfg)
			for i := 0; i < 512; i++ {
				parent.Add(next())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parent.Merge(child)
				parent.Compress()
			}
			b.StopTimer()
			qdigestBenchSink = parent.Count()
		})
	}
}

// --- micro-benchmarks of the core building blocks ---

func BenchmarkSetCheckerSubsumed(b *testing.B) {
	checker := subsume.NewSetChecker(0.02, 1)
	var set []*model.Subscription
	for i := 0; i < 50; i++ {
		lo := float64(i % 10)
		sub, err := model.NewAbstractSubscription(
			model.SubscriptionID(fmt.Sprintf("s%d", i)),
			[]model.AttributeFilter{
				{Attr: model.AmbientTemperature, Range: NewInterval(-lo-5, lo+5)},
				{Attr: model.WindSpeed, Range: NewInterval(0, 10+lo)},
			},
			Everywhere(), 30, model.NoSpatialConstraint)
		if err != nil {
			b.Fatal(err)
		}
		set = append(set, sub)
	}
	candidate, err := model.NewAbstractSubscription("cand",
		[]model.AttributeFilter{
			{Attr: model.AmbientTemperature, Range: NewInterval(-3, 3)},
			{Attr: model.WindSpeed, Range: NewInterval(2, 8)},
		},
		Everywhere(), 30, model.NoSpatialConstraint)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Subsumed(candidate, set)
	}
}

func BenchmarkComplexMatch(b *testing.B) {
	sub, err := model.NewAbstractSubscription("q",
		[]model.AttributeFilter{
			{Attr: model.AmbientTemperature, Range: NewInterval(-10, 10)},
			{Attr: model.WindSpeed, Range: NewInterval(0, 20)},
			{Attr: model.RelativeHumidity, Range: NewInterval(20, 90)},
		},
		Everywhere(), 120, model.NoSpatialConstraint)
	if err != nil {
		b.Fatal(err)
	}
	var window []model.Event
	attrs := []model.AttributeType{model.AmbientTemperature, model.WindSpeed, model.RelativeHumidity}
	for i := 0; i < 30; i++ {
		window = append(window, model.Event{
			Seq:  uint64(i + 1),
			Attr: attrs[i%3], Value: float64(i % 15), Time: model.Timestamp(i * 5),
		})
	}
	trigger := window[len(window)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub.FindComplexMatch(window, &trigger)
	}
}
