package sensorcq

import (
	"strings"
	"testing"
)

// buildWalkthroughDeployment reproduces the paper's six-node walkthrough
// topology through the public API.
func buildWalkthroughDeployment(t *testing.T) *Deployment {
	t.Helper()
	dep, err := NewTopology(6).
		Link(5, 4).Link(4, 3).Link(3, 0).Link(3, 1).Link(4, 2).
		PlaceSensor(0, Sensor{ID: "a", Attr: AmbientTemperature}).
		PlaceSensor(1, Sensor{ID: "b", Attr: RelativeHumidity}).
		PlaceSensor(2, Sensor{ID: "c", Attr: WindSpeed}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestTopologyBuilderErrors(t *testing.T) {
	if _, err := NewTopology(3).Link(0, 1).Build(); err == nil {
		t.Error("disconnected topology should fail")
	}
	if _, err := NewTopology(2).Link(0, 5).Build(); err == nil {
		t.Error("out-of-range link should fail")
	}
	if _, err := NewTopology(2).Link(-1, 0).Build(); err == nil {
		t.Error("negative node link should fail")
	}
	if _, err := NewTopology(2).Link(0, 0).Build(); err == nil {
		t.Error("self-link should fail")
	}
	if _, err := NewTopology(3).Link(0, 1).Link(1, 2).Link(2, 0).Build(); err == nil {
		t.Error("cyclic topology should fail (the network must be acyclic)")
	}
	if _, err := NewTopology(2).Link(0, 1).
		PlaceSensor(0, Sensor{ID: "x", Attr: WindSpeed}).
		PlaceSensor(1, Sensor{ID: "x", Attr: WindSpeed}).Build(); err == nil {
		t.Error("duplicate sensor placement should fail")
	}
	// A builder error is sticky: later stages keep reporting it and Build
	// never partially succeeds.
	b := NewTopology(2).Link(0, 9).PlaceSensor(0, Sensor{ID: "y", Attr: WindSpeed})
	if _, err := b.Build(); err == nil {
		t.Error("builder should carry the first error through chained calls")
	}
}

func TestSystemEndToEndFSF(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	if sys.Approach() != FilterSplitForward || sys.Deployment() != dep {
		t.Error("accessors wrong")
	}

	sub, err := NewIdentifiedSubscription("alert", []SensorFilter{
		{Sensor: "a", Attr: AmbientTemperature, Range: NewInterval(50, 80)},
		{Sensor: "b", Attr: RelativeHumidity, Range: NewInterval(10, 30)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Subscribe(5, sub); err != nil {
		t.Fatal(err)
	}
	if got := sys.Traffic().SubscriptionLoad; got != 4 {
		t.Errorf("subscription load = %d, want 4", got)
	}

	events := []Event{
		{Seq: 1, Sensor: "a", Attr: AmbientTemperature, Value: 60, Time: 10},
		{Seq: 2, Sensor: "b", Attr: RelativeHumidity, Value: 20, Time: 12},
	}
	if err := sys.Replay(events); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.DeliveriesFor("alert")); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
	seqs := sys.DeliveredEventSeqs("alert")
	if !seqs[1] || !seqs[2] {
		t.Errorf("delivered seqs = %v", seqs)
	}
	if sys.Traffic().EventLoad == 0 {
		t.Error("event load should be non-zero")
	}
	if err := sys.Publish(Event{Seq: 3, Sensor: "nope", Attr: WindSpeed}); err == nil {
		t.Error("publishing for an unknown sensor should fail")
	}
}

func TestSystemConcurrentRuntime(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub, err := NewAbstractSubscription("q", []AttributeFilter{
		{Attr: AmbientTemperature, Range: NewInterval(0, 100)},
	}, Everywhere(), 30, NoSpatialConstraint)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Subscribe(5, sub); err != nil {
		t.Fatal(err)
	}
	if err := sys.Publish(Event{Seq: 1, Sensor: "a", Attr: AmbientTemperature, Value: 50, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if len(sys.DeliveriesFor("q")) != 1 {
		t.Error("concurrent runtime should deliver the matching event")
	}
}

func TestSystemDefaultsAndErrors(t *testing.T) {
	if _, err := NewSystem(nil, Config{}); err == nil {
		t.Error("nil deployment should fail")
	}
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Approach() != FilterSplitForward {
		t.Error("default approach should be FilterSplitForward")
	}
	if _, err := NewSystem(dep, Config{Approach: "bogus"}); err == nil {
		t.Error("unknown approach should fail")
	}
	if _, err := sys.Subscribe(99, nil); err == nil {
		t.Error("subscribing nil at an unknown node should fail")
	}
}

func TestGeneratorsThroughFacade(t *testing.T) {
	dep, err := GenerateDeployment(DeploymentConfig{
		TotalNodes: 30, SensorNodes: 20, Groups: 4,
		Attributes: DefaultAttributes(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace(dep, TraceConfig{Rounds: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if trace.NumEvents() != 100 {
		t.Errorf("trace events = %d, want 100", trace.NumEvents())
	}
	subs, err := GenerateWorkload(dep, trace, WorkloadConfig{Count: 12, MinAttrs: 3, MaxAttrs: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 12 {
		t.Errorf("workload size = %d", len(subs))
	}
	if len(DefaultAttributeProfiles()) != 5 {
		t.Error("expected 5 default profiles")
	}
	if len(Approaches()) != 5 || len(AllScenarios()) != 4 {
		t.Error("registry sizes wrong")
	}
}

func TestRunExperimentThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	s := QuickScale(SmallScaleScenario())
	s.Batches = 2
	s.BatchSize = 15
	res, err := RunExperiment(s, &ExperimentOptions{
		Approaches:    []Approach{OperatorPlacement, FilterSplitForward},
		ComputeRecall: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var table strings.Builder
	if err := WriteReport(&table, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "filter-split-forward") {
		t.Error("report should mention filter-split-forward")
	}
	var csv strings.Builder
	if err := WriteReportCSV(&csv, res); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != 1+2*2 {
		t.Errorf("unexpected CSV size:\n%s", csv.String())
	}
}
