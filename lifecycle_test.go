package sensorcq

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"sensorcq/internal/netsim"
)

// matchingPair returns one (a, b) reading pair matching the walkthrough
// subscriptions, with fresh sequence numbers.
func matchingPair(seq uint64, at Timestamp) []Event {
	return []Event{
		{Seq: seq, Sensor: "a", Attr: AmbientTemperature, Value: 60, Time: at},
		{Seq: seq + 1, Sensor: "b", Attr: RelativeHumidity, Value: 20, Time: at + 2},
	}
}

func walkthroughSub(t *testing.T, id SubscriptionID) *Subscription {
	t.Helper()
	sub, err := NewIdentifiedSubscription(id, []SensorFilter{
		{Sensor: "a", Attr: AmbientTemperature, Range: NewInterval(50, 80)},
		{Sensor: "b", Attr: RelativeHumidity, Range: NewInterval(10, 30)},
	}, 30)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// TestSubscriptionHandleLifecycle walks the full subscribe → stream →
// unsubscribe story on both runtimes: push sinks (channel and callback) must
// mirror the pull log exactly, Unsubscribe must close the stream and stop
// deliveries network-wide, and the retracted ID must be reusable.
func TestSubscriptionHandleLifecycle(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			dep := buildWalkthroughDeployment(t)
			sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: concurrent})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			var callbackCount atomic.Int64
			// WithRetainLog keeps the pull log readable after Unsubscribe —
			// the push-vs-pull equality below is asserted on the retired
			// handle (default eviction is covered by
			// TestUnsubscribeEvictsDeliveryMaps).
			h, err := sys.Subscribe(5, walkthroughSub(t, "alert"),
				WithCallback(func(Delivery) { callbackCount.Add(1) }), WithRetainLog())
			if err != nil {
				t.Fatal(err)
			}
			if h.ID() != "alert" || h.Node() != 5 || !h.Active() {
				t.Error("handle identity accessors wrong")
			}
			if got, err := sys.HandleByID("alert"); err != nil || got != h || sys.ActiveSubscriptions() != 1 {
				t.Errorf("handle registry lookup = (%v, %v), want the registered handle", got, err)
			}
			if _, err := sys.HandleByID("never-registered"); !errors.Is(err, ErrUnknownSubscription) {
				t.Errorf("HandleByID unknown ID = %v, want ErrUnknownSubscription", err)
			}

			// A second registration of an active ID is rejected.
			if _, err := sys.Subscribe(5, walkthroughSub(t, "alert")); !errors.Is(err, ErrDuplicateSubscription) {
				t.Errorf("duplicate subscribe error = %v, want ErrDuplicateSubscription", err)
			}

			if err := sys.Replay(matchingPair(1, 100)); err != nil {
				t.Fatal(err)
			}
			if err := sys.Replay(matchingPair(3, 200)); err != nil {
				t.Fatal(err)
			}
			if got := h.Delivered(); got != 2 {
				t.Errorf("handle delivered = %d, want 2", got)
			}
			if got := callbackCount.Load(); got != 2 {
				t.Errorf("callback invocations = %d, want 2", got)
			}
			if h.DroppedPushes() != 0 {
				t.Errorf("dropped pushes = %d, want 0", h.DroppedPushes())
			}
			seqs := h.DeliveredSeqs()
			for _, want := range []uint64{1, 2, 3, 4} {
				if !seqs[want] {
					t.Errorf("delivered seqs missing %d: %v", want, seqs)
				}
			}

			// Unsubscribe closes the stream; the pushed stream must equal
			// the pull log exactly (same complex events, same multiplicity).
			if err := h.Unsubscribe(); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.HandleByID("alert"); !errors.Is(err, ErrUnknownSubscription) {
				t.Errorf("HandleByID of retired ID = %v, want ErrUnknownSubscription", err)
			}
			if h.Active() || sys.ActiveSubscriptions() != 0 {
				t.Error("handle should be retired after Unsubscribe")
			}
			var pushed []Delivery
			for d := range h.Deliveries() {
				pushed = append(pushed, d)
			}
			pulled := h.Log()
			if len(pushed) != len(pulled) || len(pushed) != 2 {
				t.Fatalf("pushed %d deliveries, pulled %d, want 2", len(pushed), len(pulled))
			}
			for i := range pushed {
				if fmt.Sprintf("%v", pushed[i].Events.Seqs()) != fmt.Sprintf("%v", pulled[i].Events.Seqs()) {
					t.Errorf("push/pull mismatch at %d: %v vs %v", i, pushed[i].Events, pulled[i].Events)
				}
			}

			// Double unsubscribe (both spellings) reports the terminal state.
			if err := h.Unsubscribe(); !errors.Is(err, ErrUnsubscribed) {
				t.Errorf("second Unsubscribe = %v, want ErrUnsubscribed", err)
			}
			if err := sys.Unsubscribe("alert"); !errors.Is(err, ErrUnsubscribed) {
				t.Errorf("System.Unsubscribe of retired ID = %v, want ErrUnsubscribed", err)
			}

			// The network no longer delivers or forwards for the retracted
			// subscription.
			traffic := sys.Traffic()
			if traffic.UnsubscriptionLoad == 0 {
				t.Error("retraction generated no unsubscription traffic")
			}
			eventsBefore := traffic.EventLoad
			if err := sys.Replay(matchingPair(5, 300)); err != nil {
				t.Fatal(err)
			}
			if got := len(sys.DeliveriesFor("alert")); got != 2 {
				t.Errorf("deliveries after unsubscribe = %d, want 2 (no new)", got)
			}
			if got := sys.Traffic().EventLoad; got != eventsBefore {
				t.Errorf("event load grew from %d to %d after unsubscribe", eventsBefore, got)
			}

			// The ID is free again.
			h2, err := sys.Subscribe(5, walkthroughSub(t, "alert"))
			if err != nil {
				t.Fatalf("re-subscribe after unsubscribe: %v", err)
			}
			if err := sys.Replay(matchingPair(7, 400)); err != nil {
				t.Fatal(err)
			}
			if got := h2.Delivered(); got != 1 {
				t.Errorf("re-subscribed handle delivered = %d, want 1", got)
			}
		})
	}
}

// TestUnsubscribeEvictsDeliveryMaps verifies the pull-log lifecycle on both
// runtimes: by default Unsubscribe evicts the retracted subscription's
// delivery-map entries (DeliveriesFor, DeliveredEventSeqs) so a long-running
// system does not accumulate dead history, while the system-wide delivery
// log keeps every recorded delivery; WithRetainLog opts a subscription out.
func TestUnsubscribeEvictsDeliveryMaps(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			dep := buildWalkthroughDeployment(t)
			sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: concurrent})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()

			evicted, err := sys.Subscribe(5, walkthroughSub(t, "evicted"))
			if err != nil {
				t.Fatal(err)
			}
			retained, err := sys.Subscribe(5, walkthroughSub(t, "retained"), WithRetainLog())
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Replay(matchingPair(1, 100)); err != nil {
				t.Fatal(err)
			}
			if got := len(sys.DeliveriesFor("evicted")); got != 1 {
				t.Fatalf("pre-unsubscribe deliveries = %d, want 1", got)
			}
			logTotal := len(sys.Deliveries())
			if logTotal == 0 {
				t.Fatal("system delivery log is empty")
			}

			if err := evicted.Unsubscribe(); err != nil {
				t.Fatal(err)
			}
			if err := retained.Unsubscribe(); err != nil {
				t.Fatal(err)
			}
			if got := len(sys.DeliveriesFor("evicted")); got != 0 {
				t.Errorf("evicted pull log = %d deliveries after unsubscribe, want 0", got)
			}
			if got := len(sys.DeliveredEventSeqs("evicted")); got != 0 {
				t.Errorf("evicted delivered seqs = %d after unsubscribe, want 0", got)
			}
			if got := len(evicted.Log()); got != 0 {
				t.Errorf("evicted handle log = %d deliveries, want 0", got)
			}
			if got := len(sys.DeliveriesFor("retained")); got != 1 {
				t.Errorf("retained pull log = %d deliveries after unsubscribe, want 1 (WithRetainLog)", got)
			}
			if got := len(sys.DeliveredEventSeqs("retained")); got == 0 {
				t.Error("retained delivered seqs evicted despite WithRetainLog")
			}
			// The system-wide log is append-only: eviction only releases the
			// per-subscription maps.
			if got := len(sys.Deliveries()); got != logTotal {
				t.Errorf("system delivery log shrank from %d to %d on unsubscribe", logTotal, got)
			}
		})
	}
}

// TestSinkBufferOverflowCounts verifies the bounded channel sink: with a
// one-slot buffer and no consumer, extra deliveries are counted as dropped
// pushes while the pull log stays complete.
func TestSinkBufferOverflowCounts(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	h, err := sys.Subscribe(5, walkthroughSub(t, "q"), WithSinkBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sys.Replay(matchingPair(uint64(1+2*i), Timestamp(100*(i+1)))); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Delivered(); got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	if got := h.DroppedPushes(); got != 2 {
		t.Errorf("dropped pushes = %d, want 2 (buffer of 1, no consumer)", got)
	}
	if got := len(h.Log()); got != 3 {
		t.Errorf("pull log = %d deliveries, want 3 (never drops)", got)
	}
	// A disabled sink never buffers and never drops.
	h2, err := sys.Subscribe(5, walkthroughSub(t, "nosink"), WithSinkBuffer(0))
	if err != nil {
		t.Fatal(err)
	}
	if h2.Deliveries() != nil {
		t.Error("WithSinkBuffer(0) should disable the delivery channel")
	}
	if err := sys.Replay(matchingPair(7, 400)); err != nil {
		t.Fatal(err)
	}
	if h2.DroppedPushes() != 0 || h2.Delivered() == 0 {
		t.Errorf("disabled sink: delivered=%d dropped=%d, want >0 and 0", h2.Delivered(), h2.DroppedPushes())
	}
}

// TestSystemCloseGuards verifies the use-after-Close contract on both
// runtimes: Close is idempotent with an error return, and every operation on
// a closed system fails with ErrClosed instead of panicking or silently
// dropping work.
func TestSystemCloseGuards(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			dep := buildWalkthroughDeployment(t)
			sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: concurrent})
			if err != nil {
				t.Fatal(err)
			}
			h, err := sys.Subscribe(5, walkthroughSub(t, "q"))
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Close(); err != nil {
				t.Fatalf("first Close = %v, want nil", err)
			}
			if err := sys.Close(); !errors.Is(err, ErrClosed) {
				t.Errorf("second Close = %v, want ErrClosed", err)
			}
			if err := sys.Publish(matchingPair(1, 100)[0]); !errors.Is(err, ErrClosed) {
				t.Errorf("Publish after Close = %v, want ErrClosed", err)
			}
			if err := sys.PublishBatch(matchingPair(1, 100)); !errors.Is(err, ErrClosed) {
				t.Errorf("PublishBatch after Close = %v, want ErrClosed", err)
			}
			if err := sys.ReplayRounds([][]Event{matchingPair(1, 100)}); !errors.Is(err, ErrClosed) {
				t.Errorf("ReplayRounds after Close = %v, want ErrClosed", err)
			}
			if _, err := sys.Subscribe(5, walkthroughSub(t, "late")); !errors.Is(err, ErrClosed) {
				t.Errorf("Subscribe after Close = %v, want ErrClosed", err)
			}
			if err := h.Unsubscribe(); !errors.Is(err, ErrClosed) {
				t.Errorf("Unsubscribe after Close = %v, want ErrClosed", err)
			}
			// Close drained and closed the handle's stream.
			if _, open := <-h.Deliveries(); open {
				t.Error("handle channel should be closed by Close")
			}
		})
	}
}

// TestTypedSentinelErrors verifies the errors.Is contracts of the public
// surface that do not need a closed system.
func TestTypedSentinelErrors(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.Publish(Event{Seq: 1, Sensor: "ghost", Attr: WindSpeed}); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("Publish unknown sensor = %v, want ErrUnknownSensor", err)
	}
	if err := sys.PublishBatch([]Event{{Seq: 1, Sensor: "ghost", Attr: WindSpeed}}); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("PublishBatch unknown sensor = %v, want ErrUnknownSensor", err)
	}
	if err := sys.ReplayRounds([][]Event{{{Seq: 1, Sensor: "ghost", Attr: WindSpeed}}}); !errors.Is(err, ErrUnknownSensor) {
		t.Errorf("ReplayRounds unknown sensor = %v, want ErrUnknownSensor", err)
	}
	if err := sys.Unsubscribe("never-registered"); !errors.Is(err, ErrUnsubscribed) {
		t.Errorf("Unsubscribe unknown ID = %v, want ErrUnsubscribed", err)
	}
}

// TestParseDeliveryModeRoundTrip pins the CLI spelling contract: every name
// DeliveryModeNames advertises parses back to a mode whose String form is
// that same name, the empty string selects the quiescent default, and
// unknown spellings fail with an error listing the valid modes.
func TestParseDeliveryModeRoundTrip(t *testing.T) {
	names := DeliveryModeNames()
	if len(names) != 3 {
		t.Fatalf("DeliveryModeNames = %v, want 3 modes", names)
	}
	for _, name := range names {
		mode, err := ParseDeliveryMode(name)
		if err != nil {
			t.Fatalf("ParseDeliveryMode(%q): %v", name, err)
		}
		if got := mode.String(); got != name {
			t.Errorf("round trip %q -> %v -> %q", name, mode, got)
		}
	}
	if mode, err := ParseDeliveryMode(""); err != nil || mode != Quiescent {
		t.Errorf("empty spelling = (%v, %v), want (Quiescent, nil)", mode, err)
	}
	if _, err := ParseDeliveryMode("bogus"); err == nil {
		t.Error("unknown spelling should fail")
	} else {
		for _, name := range names {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("error %q does not list valid mode %q", err, name)
			}
		}
	}
}

// flakyUnsubRuntime wraps a real runtime so the first Unsubscribe call blocks
// until released and then fails; later calls pass through. It lets the test
// hold one retraction in its failing window while a second Unsubscribe races.
type flakyUnsubRuntime struct {
	netsim.Runtime
	entered chan struct{} // closed when the first call is inside the runtime
	release chan struct{} // the first call blocks here before failing
	calls   atomic.Int32
}

var errInjectedRetraction = errors.New("injected retraction failure")

func (f *flakyUnsubRuntime) Unsubscribe(node NodeID, id SubscriptionID) error {
	if f.calls.Add(1) == 1 {
		close(f.entered)
		<-f.release
		return errInjectedRetraction
	}
	return f.Runtime.Unsubscribe(node, id)
}

// TestConcurrentUnsubscribeFailure pins the failure-path contract of
// SubscriptionHandle.Unsubscribe under concurrency: while one call is stuck
// in a retraction that will fail, a second call must NOT report
// ErrUnsubscribed — that error promises the retraction ran. Instead the
// loser waits, retries the retraction itself, and succeeds.
func TestConcurrentUnsubscribeFailure(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	h, err := sys.Subscribe(5, walkthroughSub(t, "alert"))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyUnsubRuntime{
		Runtime: sys.runtime,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	sys.runtime = flaky

	errA := make(chan error, 1)
	go func() { errA <- h.Unsubscribe() }()
	<-flaky.entered // A is now inside its doomed retraction.

	errB := make(chan error, 1)
	go func() { errB <- h.Unsubscribe() }()

	// B must not produce a result while A's retraction is still in flight:
	// returning ErrUnsubscribed here would claim a retraction that never ran.
	select {
	case err := <-errB:
		t.Fatalf("second Unsubscribe returned %v while the first retraction was still in flight", err)
	default:
	}

	close(flaky.release)
	if err := <-errA; !errors.Is(err, errInjectedRetraction) {
		t.Fatalf("first Unsubscribe error = %v, want the injected retraction failure", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("second Unsubscribe after the first failed = %v, want success (retry of the retraction)", err)
	}
	if h.Active() {
		t.Error("handle still active after a successful Unsubscribe")
	}
	if err := h.Unsubscribe(); !errors.Is(err, ErrUnsubscribed) {
		t.Errorf("third Unsubscribe error = %v, want ErrUnsubscribed", err)
	}
	if n := flaky.calls.Load(); n != 2 {
		t.Errorf("runtime retraction ran %d times, want 2 (one failure, one success)", n)
	}
}

// TestConcurrentUnsubscribeStress hammers one handle from many goroutines
// with a runtime whose first retraction fails: exactly one caller must win,
// every ErrUnsubscribed must be preceded by that success, and the injected
// failure must surface exactly once. Run with -race this also proves the
// handle's lifecycle state is data-race free.
func TestConcurrentUnsubscribeStress(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	h, err := sys.Subscribe(5, walkthroughSub(t, "alert"))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyUnsubRuntime{
		Runtime: sys.runtime,
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	close(flaky.release) // do not block, just fail the first call
	sys.runtime = flaky

	const workers = 8
	results := make(chan error, workers)
	start := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			<-start
			results <- h.Unsubscribe()
		}()
	}
	close(start)

	var ok, already, injected int
	for i := 0; i < workers; i++ {
		switch err := <-results; {
		case err == nil:
			ok++
		case errors.Is(err, ErrUnsubscribed):
			already++
		case errors.Is(err, errInjectedRetraction):
			injected++
		default:
			t.Errorf("unexpected Unsubscribe error: %v", err)
		}
	}
	if ok != 1 {
		t.Errorf("%d callers succeeded, want exactly 1", ok)
	}
	if injected != 1 {
		t.Errorf("injected failure surfaced %d times, want exactly 1", injected)
	}
	if already != workers-2 {
		t.Errorf("%d callers saw ErrUnsubscribed, want %d", already, workers-2)
	}
}
