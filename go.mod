module sensorcq

go 1.24
