package sensorcq

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/stores"
	"sensorcq/internal/topology"
)

// Approach names one of the five evaluated query-processing approaches.
type Approach = experiment.ApproachID

// The five approaches of the paper's evaluation (Table II).
const (
	// Centralized ships every subscription and every reading to a central
	// node with global knowledge and matches there.
	Centralized = experiment.Centralized
	// Naive forwards every subscription with no filtering and builds one
	// result set per subscription.
	Naive = experiment.Naive
	// OperatorPlacement shares identical and covering operators between
	// queries (pairwise covering) with per-subscription result sets.
	OperatorPlacement = experiment.OperatorPlacement
	// MultiJoin decomposes multi-joins into binary joins at the first
	// divergence node, with publish/subscribe event forwarding.
	MultiJoin = experiment.MultiJoin
	// FilterSplitForward is the paper's contribution: probabilistic set
	// subsumption, advertisement-driven splitting and per-neighbour
	// publish/subscribe event forwarding.
	FilterSplitForward = experiment.FilterSplitForward
)

// Approaches returns every available approach, centralized first.
func Approaches() []Approach { return experiment.All() }

// Config selects the approach and runtime of a System.
type Config struct {
	// Approach is the query-processing approach to run (default
	// FilterSplitForward).
	Approach Approach
	// Seed drives the probabilistic set filter of FilterSplitForward.
	Seed int64
	// SetFilterError overrides the FSF set-filter error probability
	// (0 keeps the default of 2%).
	SetFilterError float64
	// Concurrent runs one goroutine per processing node instead of the
	// deterministic sequential engine.
	Concurrent bool
	// Delivery selects the replay delivery semantics used by ReplayRounds
	// and ReplayTrace: Quiescent (the default) fully propagates every
	// event before injecting the next one; Pipelined injects a whole
	// measurement round before draining, which is what lets a Concurrent
	// system evaluate a round in parallel.
	//
	// Pipelined runs produce the same traffic totals and the same
	// per-round delivery multisets as quiescent runs — only the delivery
	// order within a round may differ — provided every subscription's
	// temporal correlation distance δt is at least the timestamp spread
	// within one replayed round (the experiment traces satisfy this: one
	// reading per sensor per round, δt = one round interval). With a
	// smaller δt, out-of-order arrival within a round can prune window
	// events a quiescent run would still have matched, and pipelined
	// deliveries may diverge.
	//
	// Windowed additionally overlaps successive rounds: ReplayRounds and
	// ReplayTrace inject round r+1..r+Lag while round r is still draining,
	// gated on the network watermark. Nodes are built with an event-window
	// validity factor of Lag+2 so the cross-round arrival skew cannot
	// prune events still needed by a late trigger; with that, windowed
	// runs keep the quiescent run's traffic totals and per-round delivery
	// multisets (deliveries are stamped with the round of their newest
	// component, which does not depend on interleaving).
	Delivery DeliveryMode
	// Lag bounds the cross-round pipelining of the Windowed delivery mode:
	// how many rounds beyond the oldest still-draining round may be in
	// flight. It must be 0 unless Delivery is Windowed; Windowed with
	// Lag 0 behaves exactly like Pipelined.
	Lag int
	// Workers sizes the concurrent engine's scheduler pool: how many
	// worker goroutines execute node activations (capped at the node
	// count). 0 selects GOMAXPROCS; negative values are rejected, as is a
	// positive value without Concurrent.
	Workers int
}

// System is a running sensor network: a deployment whose processing nodes
// execute the chosen approach. It is the main entry point of the public API.
//
// Subscriptions are continuous queries with a lifecycle: Subscribe returns a
// *SubscriptionHandle whose delivery channel streams results as they are
// produced and whose Unsubscribe retracts the query network-wide. A closed
// System rejects every operation with ErrClosed.
type System struct {
	dep        *Deployment
	runtime    netsim.Runtime
	concurrent *netsim.ConcurrentEngine
	approach   Approach
	delivery   DeliveryMode
	lag        int

	closed atomic.Bool

	// handles is the active-subscription registry (SubscriptionID →
	// *SubscriptionHandle). A sync.Map fits the access pattern exactly:
	// the delivery path does read-mostly lookups (lock-free after the
	// first), while churn (Subscribe/Unsubscribe) mutates single keys in
	// O(1) — bulk registration or retraction never rebuilds a snapshot.
	handles sync.Map
}

// TrafficStats summarises the traffic generated so far.
type TrafficStats struct {
	// AdvertisementLoad counts forwarded advertisements.
	AdvertisementLoad int64
	// SubscriptionLoad counts forwarded subscriptions/operators — the
	// paper's "number of forwarded queries".
	SubscriptionLoad int64
	// UnsubscriptionLoad counts forwarded retraction messages generated by
	// Unsubscribe (control traffic, accounted separately from the
	// subscription load).
	UnsubscriptionLoad int64
	// EventLoad counts forwarded simple events — the paper's "number of
	// forwarded data units".
	EventLoad int64
	// PartialAggregateLoad counts forwarded windowed partial-aggregate
	// messages (and, for the exact baseline, relayed raw readings),
	// accounted separately from EventLoad.
	PartialAggregateLoad int64
	// PartialAggregateBytes accumulates the encoded wire size of those
	// messages — the byte cost the error-vs-traffic experiment plots.
	PartialAggregateBytes int64
}

// NewSystem builds a System over the deployment, attaches and advertises
// every sensor of the deployment, and returns it ready for Subscribe and
// Publish calls.
func NewSystem(dep *Deployment, cfg Config) (*System, error) {
	if dep == nil || dep.Graph == nil {
		return nil, fmt.Errorf("sensorcq: nil deployment")
	}
	if cfg.Approach == "" {
		cfg.Approach = FilterSplitForward
	}
	if cfg.Lag < 0 {
		return nil, fmt.Errorf("sensorcq: negative replay lag %d", cfg.Lag)
	}
	if cfg.Lag > 0 && cfg.Delivery != Windowed {
		return nil, fmt.Errorf("sensorcq: replay lag %d requires the windowed delivery mode (got %v)", cfg.Lag, cfg.Delivery)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sensorcq: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers > 0 && !cfg.Concurrent {
		return nil, fmt.Errorf("sensorcq: worker count %d requires the concurrent engine", cfg.Workers)
	}
	factory, err := experiment.FactoryForSpec(cfg.Approach, experiment.FactorySpec{
		Seed:           cfg.Seed,
		SetFilterError: cfg.SetFilterError,
		ValidityFactor: netsim.RequiredValidityFactor(cfg.Delivery, cfg.Lag),
	})
	if err != nil {
		return nil, err
	}
	sys := &System{dep: dep, approach: cfg.Approach, delivery: cfg.Delivery, lag: cfg.Lag}
	if cfg.Concurrent {
		conc := netsim.NewConcurrentEngineWorkers(dep.Graph, factory, cfg.Workers)
		sys.runtime = conc
		sys.concurrent = conc
	} else {
		sys.runtime = netsim.NewEngine(dep.Graph, factory)
	}
	// Push delivery: the observer runs on the delivering node's dispatch
	// path and routes each delivery to its subscription's handle (one
	// lock-free registry lookup + the handle's own lock — no engine-wide
	// mutex).
	sys.runtime.SetDeliveryObserver(func(d Delivery) {
		if h, ok := sys.handles.Load(d.SubID); ok {
			h.(*SubscriptionHandle).push(d)
		}
	})
	for _, sensor := range dep.Sensors {
		host, ok := dep.SensorHost[sensor.ID]
		if !ok {
			sys.Close()
			return nil, fmt.Errorf("sensorcq: sensor %s has no host node", sensor.ID)
		}
		if err := sys.runtime.AttachSensor(host, sensor); err != nil {
			sys.Close()
			return nil, fmt.Errorf("sensorcq: attaching sensor %s: %w", sensor.ID, err)
		}
	}
	sys.runtime.Flush()
	return sys, nil
}

// Approach returns the approach this system runs.
func (s *System) Approach() Approach { return s.approach }

// Deployment returns the underlying deployment.
func (s *System) Deployment() *Deployment { return s.dep }

// Workers returns the effective scheduler worker count of a Concurrent
// system, or 0 for the sequential engine (which has no worker pool).
func (s *System) Workers() int {
	if s.concurrent == nil {
		return 0
	}
	return s.concurrent.Workers()
}

// Subscribe registers a user subscription at the given processing node and
// returns its lifecycle handle. The subscription is fully propagated through
// the network before Subscribe returns; results are then streamed to the
// handle's delivery channel (and callback, if one was configured) as they
// are produced, in addition to the pull log served by DeliveriesFor.
//
// Subscribing an ID that is still active returns ErrDuplicateSubscription;
// after the ID is unsubscribed it may be registered again. A closed system
// returns ErrClosed.
func (s *System) Subscribe(node NodeID, sub *Subscription, opts ...SubscribeOption) (*SubscriptionHandle, error) {
	return s.SubscribeContext(context.Background(), node, sub, opts...)
}

// SubscribeContext is Subscribe with cancellation: the context bounds the
// wait for the subscription's network-wide propagation. On cancellation it
// returns the context's error (match with errors.Is against
// context.Canceled / context.DeadlineExceeded); the partially propagated
// registration is chased by a compensating retraction inside the runtime,
// so the network converges to the not-subscribed state without further
// blocking, and the ID becomes registrable again once that retraction has
// drained.
func (s *System) SubscribeContext(ctx context.Context, node NodeID, sub *Subscription, opts ...SubscribeOption) (*SubscriptionHandle, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if sub == nil {
		return nil, fmt.Errorf("sensorcq: nil subscription")
	}
	o := subscribeOptions{sinkBuffer: DefaultSinkBuffer}
	for _, opt := range opts {
		opt(&o)
	}
	switch o.bpMode {
	case DropNewest, DropOldest:
	case BlockWithTimeout:
		if o.bpTimeout <= 0 {
			o.bpTimeout = DefaultBackpressureTimeout
		}
	default:
		return nil, fmt.Errorf("sensorcq: invalid backpressure mode %v", o.bpMode)
	}
	h := &SubscriptionHandle{
		sys: s, node: node, sub: sub,
		cb: o.callback, retainLog: o.retainLog,
		bpMode: o.bpMode, bpTimeout: o.bpTimeout,
	}
	if o.sinkBuffer > 0 {
		h.ch = make(chan Delivery, o.sinkBuffer)
		h.done = make(chan struct{})
	}

	if _, dup := s.handles.LoadOrStore(sub.ID, h); dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateSubscription, sub.ID)
	}
	if err := s.runtime.SubscribeContext(ctx, node, sub); err != nil {
		s.handles.Delete(sub.ID)
		h.closeSink()
		return nil, err
	}
	// Re-check after registering: a Close that raced this Subscribe swept
	// the registry before (or while) the handle appeared in it, so close the
	// sink ourselves and report the system closed — otherwise a consumer
	// ranging over the channel of a handle born after the sweep would block
	// forever. closeSink is idempotent, so overlapping with Close's own
	// sweep is harmless.
	if s.closed.Load() {
		s.handles.Delete(sub.ID)
		h.closeSink()
		return nil, ErrClosed
	}
	return h, nil
}

// SubscribeAggregate registers a windowed aggregate continuous query (built
// with NewAggregateSubscription) at the given processing node. The query is
// routed along the same advertisement paths as any subscription, but each
// node of its dissemination tree folds matching readings into one mergeable
// partial aggregate per tumbling window and ships a single partial upstream
// when the network watermark closes the window; the handle's delivery
// channel then streams one Delivery per finalised window, carrying an
// AggregateResult instead of complex events.
func (s *System) SubscribeAggregate(node NodeID, sub *Subscription, opts ...SubscribeOption) (*SubscriptionHandle, error) {
	return s.SubscribeAggregateContext(context.Background(), node, sub, opts...)
}

// SubscribeAggregateContext is SubscribeAggregate with cancellation (see
// SubscribeContext).
func (s *System) SubscribeAggregateContext(ctx context.Context, node NodeID, sub *Subscription, opts ...SubscribeOption) (*SubscriptionHandle, error) {
	if sub == nil || sub.Aggregate == nil {
		return nil, fmt.Errorf("sensorcq: SubscribeAggregate needs a subscription built with NewAggregateSubscription")
	}
	if err := sub.Aggregate.Validate(); err != nil {
		return nil, err
	}
	return s.SubscribeContext(ctx, node, sub, opts...)
}

// Unsubscribe retracts the active subscription with the given ID
// network-wide; it is the lookup-by-ID form of SubscriptionHandle
// Unsubscribe. An ID with no active handle — never registered, or already
// retracted — returns ErrUnsubscribed wrapped with the ID, the same error
// shape a second SubscriptionHandle.Unsubscribe returns, so both surfaces
// are matched with errors.Is(err, ErrUnsubscribed).
func (s *System) Unsubscribe(id SubscriptionID) error {
	if s.closed.Load() {
		return ErrClosed
	}
	h, ok := s.handles.Load(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnsubscribed, id)
	}
	return h.(*SubscriptionHandle).Unsubscribe()
}

// unsubscribe propagates a handle's retraction through the runtime and
// retires the handle. Called exactly once per handle (the handle's
// unsubscribed flag gates it).
func (s *System) unsubscribe(h *SubscriptionHandle) error {
	// Wake the handle's blocked BlockWithTimeout pushes first: on the
	// concurrent runtime a blocked push stalls its node's worker, and the
	// retraction below could not drain past it — Unsubscribe would wait out
	// the full backpressure timeout instead of returning promptly.
	h.abortBlock()
	if err := s.runtime.Unsubscribe(h.node, h.sub.ID); err != nil {
		return err
	}
	// After the flush the retraction has fully propagated: no node holds an
	// operator of this subscription, so no further delivery can be produced
	// and the sink can be closed.
	s.runtime.Flush()
	s.handles.Delete(h.sub.ID)
	h.closeSink()
	// Release the retracted subscription's delivery maps (the DeliveriesFor
	// index and the delivered-sequence sets) unless the handle opted into
	// keeping its history: the pull log of a long-gone subscription would
	// otherwise stay resident for the lifetime of the system.
	if !h.retainLog {
		s.runtime.EvictDeliveries(h.sub.ID)
	}
	return nil
}

// Handle returns the active handle of a subscription, or nil when the ID is
// unknown or already unsubscribed.
//
// Deprecated: the nil result conflates "never registered" with "already
// retracted" and forces a nil check at every call site. Use HandleByID,
// which reports the missing ID as ErrUnknownSubscription.
func (s *System) Handle(id SubscriptionID) *SubscriptionHandle {
	h, err := s.HandleByID(id)
	if err != nil {
		return nil
	}
	return h
}

// HandleByID returns the active handle of a subscription. An ID with no
// active handle — never registered, or already retracted — returns
// ErrUnknownSubscription wrapped with the ID (match with errors.Is).
func (s *System) HandleByID(id SubscriptionID) (*SubscriptionHandle, error) {
	if h, ok := s.handles.Load(id); ok {
		return h.(*SubscriptionHandle), nil
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownSubscription, id)
}

// Handles returns the active (not yet unsubscribed) subscription handles,
// sorted by subscription ID for a deterministic listing. The slice is a
// snapshot: handles retracted after it is taken remain in it but report
// Active() == false.
func (s *System) Handles() []*SubscriptionHandle {
	var out []*SubscriptionHandle
	s.handles.Range(func(_, h any) bool {
		out = append(out, h.(*SubscriptionHandle))
		return true
	})
	slices.SortFunc(out, func(a, b *SubscriptionHandle) int {
		return strings.Compare(string(a.sub.ID), string(b.sub.ID))
	})
	return out
}

// ActiveSubscriptions returns the number of active (not yet unsubscribed)
// subscriptions.
func (s *System) ActiveSubscriptions() int {
	n := 0
	s.handles.Range(func(any, any) bool { n++; return true })
	return n
}

// Publish injects a sensor reading. The event's Sensor must be part of the
// deployment; the reading enters the network at the node hosting it. An
// unknown sensor returns ErrUnknownSensor; a closed system ErrClosed.
func (s *System) Publish(ev Event) error {
	return s.PublishContext(context.Background(), ev)
}

// PublishContext is Publish with cancellation: the context bounds the wait
// for the reading's network-wide propagation. On cancellation it returns the
// context's error; the reading itself is not recalled — it keeps
// propagating (on the concurrent runtime's workers, or on this system's
// next drain with the sequential runtime) and any deliveries it causes
// still happen.
func (s *System) PublishContext(ctx context.Context, ev Event) error {
	if s.closed.Load() {
		return ErrClosed
	}
	host, ok := s.dep.SensorHost[ev.Sensor]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSensor, ev.Sensor)
	}
	return s.PublishAtContext(ctx, host, ev)
}

// PublishAt injects a reading at an explicit node (for hand-built
// deployments or readings of sensors attached after construction).
func (s *System) PublishAt(node NodeID, ev Event) error {
	return s.PublishAtContext(context.Background(), node, ev)
}

// PublishAtContext is PublishAt with cancellation, with the same
// cancellation semantics as PublishContext.
func (s *System) PublishAtContext(ctx context.Context, node NodeID, ev Event) error {
	if s.closed.Load() {
		return ErrClosed
	}
	return s.runtime.PublishContext(ctx, node, ev)
}

// PublishBatch injects a trace of readings in order through the runtime's
// batched path: the whole batch is validated first (unknown sensors reject
// the batch before any event enters the network), then every event is
// published and fully propagated in order. The observable behaviour is
// identical to calling Publish per event; the batch amortizes per-event
// bookkeeping, which matters when replaying long traces.
func (s *System) PublishBatch(events []Event) error {
	return s.PublishBatchContext(context.Background(), events)
}

// PublishBatchContext is PublishBatch with cancellation (see
// PublishContext for the semantics of an aborted propagation wait).
func (s *System) PublishBatchContext(ctx context.Context, events []Event) error {
	if s.closed.Load() {
		return ErrClosed
	}
	batch := make([]netsim.Publication, len(events))
	for i, ev := range events {
		host, ok := s.dep.SensorHost[ev.Sensor]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownSensor, ev.Sensor)
		}
		batch[i] = netsim.Publication{Node: host, Event: ev}
	}
	if err := s.runtime.ReplayRoundsContext(ctx, [][]netsim.Publication{batch}, netsim.ReplayOptions{Mode: netsim.Quiescent}); err != nil {
		return err
	}
	return s.runtime.FlushContext(ctx)
}

// Replay publishes every event of a trace in order (an alias for
// PublishBatch kept for readability at call sites). It always uses quiescent
// semantics; use ReplayRounds or ReplayTrace for the configured Delivery
// mode.
func (s *System) Replay(events []Event) error {
	return s.PublishBatch(events)
}

// ReplayRounds replays a trace structured as measurement rounds under the
// system's configured Delivery mode. With Delivery: Pipelined on a
// Concurrent system, each round is evaluated by all processing nodes in
// parallel; the network is drained to quiescence between rounds.
func (s *System) ReplayRounds(rounds [][]Event) error {
	return s.ReplayRoundsContext(context.Background(), rounds)
}

// ReplayRoundsContext is ReplayRounds with cancellation: the context is
// consulted between dispatch bursts and at every blocking drain or
// watermark wait, so a long or stuck replay can be abandoned mid-round with
// the context's error. Rounds already injected keep propagating; the next
// drain (any mutating call, or Close) completes them.
func (s *System) ReplayRoundsContext(ctx context.Context, rounds [][]Event) error {
	if s.closed.Load() {
		return ErrClosed
	}
	pubRounds := make([][]netsim.Publication, len(rounds))
	for r, events := range rounds {
		pubRounds[r] = make([]netsim.Publication, len(events))
		for i, ev := range events {
			host, ok := s.dep.SensorHost[ev.Sensor]
			if !ok {
				return fmt.Errorf("%w: %s", ErrUnknownSensor, ev.Sensor)
			}
			pubRounds[r][i] = netsim.Publication{Node: host, Event: ev}
		}
	}
	if err := s.runtime.ReplayRoundsContext(ctx, pubRounds, netsim.ReplayOptions{Mode: s.delivery, Lag: s.lag}); err != nil {
		return err
	}
	return s.runtime.FlushContext(ctx)
}

// ReplayTrace replays a generated trace round by round under the system's
// configured Delivery mode.
func (s *System) ReplayTrace(trace *Trace) error {
	return s.ReplayTraceContext(context.Background(), trace)
}

// ReplayTraceContext is ReplayTrace with cancellation (see
// ReplayRoundsContext).
func (s *System) ReplayTraceContext(ctx context.Context, trace *Trace) error {
	if trace == nil {
		return fmt.Errorf("sensorcq: nil trace")
	}
	return s.ReplayRoundsContext(ctx, trace.ByRound)
}

// DroppedMessages returns the number of messages the runtime failed to
// enqueue (non-zero only if a send raced engine shutdown).
func (s *System) DroppedMessages() int64 {
	return s.runtime.Metrics().DroppedMessages()
}

// Watermark returns the network low-watermark: the highest replay round
// whose work has been fully processed. After a drained replay it equals the
// number of rounds replayed so far; during a Windowed replay it trails the
// injection frontier by at most Lag+1 rounds.
func (s *System) Watermark() int { return s.runtime.Watermark() }

// Traffic returns the accumulated traffic counters.
func (s *System) Traffic() TrafficStats {
	m := s.runtime.Metrics()
	snap := m.Snapshot()
	return TrafficStats{
		AdvertisementLoad:     snap.AdvertisementLoad,
		SubscriptionLoad:      snap.SubscriptionLoad,
		UnsubscriptionLoad:    snap.UnsubscriptionLoad,
		EventLoad:             snap.EventLoad,
		PartialAggregateLoad:  snap.PartialAggregateLoad,
		PartialAggregateBytes: m.PartialAggregateBytes(),
	}
}

// IndexStats summarises the shape and observed lookup cost of the match
// indexes a run builds.
type IndexStats = stores.IndexStats

// IndexStats aggregates the match-index statistics of every node in the
// network: for the distributed approaches each node contributes its local
// delivery index plus one matcher index per origin; for the centralized
// baseline only the centre node holds (the single, global) index. The
// runtime is flushed first so the aggregate reflects a quiescent network.
func (s *System) IndexStats() IndexStats {
	if !s.closed.Load() {
		s.runtime.Flush()
	}
	var stats IndexStats
	for n := 0; n < s.dep.Graph.NumNodes(); n++ {
		h, ok := s.runtime.Handler(topology.NodeID(n)).(interface{ IndexStats() stores.IndexStats })
		if !ok {
			continue
		}
		stats.Merge(h.IndexStats())
	}
	return stats
}

// Deliveries returns every complex event delivered to subscribing users so
// far, in delivery order.
func (s *System) Deliveries() []Delivery { return s.runtime.Deliveries() }

// DeliveriesFor returns the deliveries of one subscription, served from the
// per-subscription sharded delivery maps: the cost is proportional to the
// subscription's own deliveries, not to the total delivered by the run.
// The maps of a retracted subscription are evicted by Unsubscribe (empty
// result) unless it was registered with WithRetainLog; Deliveries keeps the
// full system log either way.
func (s *System) DeliveriesFor(id SubscriptionID) []Delivery {
	return s.runtime.DeliveriesFor(id)
}

// DeliveredEventSeqs returns the set of simple-event sequence numbers that
// reached the user of the given subscription.
func (s *System) DeliveredEventSeqs(id SubscriptionID) map[uint64]bool {
	return s.runtime.Metrics().DeliveredSeqs(id)
}

// Close shuts the system down: it drains in-flight work, releases the
// per-node goroutines of a concurrent runtime, and closes the delivery
// channel of every still-active subscription handle (so consumers ranging
// over them terminate). Close is idempotent — the first call returns nil,
// every later call returns ErrClosed. Every mutating method (Publish,
// PublishAt, PublishBatch, Replay*, Subscribe, Unsubscribe) called after
// Close fails with ErrClosed instead of panicking or silently dropping
// work; read-only accessors (Traffic, Deliveries, DeliveriesFor,
// DeliveredEventSeqs, Watermark, DroppedMessages, handle counters and logs)
// stay readable so the run's results can still be inspected post-mortem.
func (s *System) Close() error {
	return s.CloseContext(context.Background())
}

// CloseContext is Close with a bound on the drain: if the context is
// cancelled while in-flight work is still propagating, the drain is
// abandoned and CloseContext returns the context's error. The system is
// considered closed either way — worker goroutines are released and every
// handle sink is closed even on a cancelled drain, so a timed-out shutdown
// still terminates consumers; only the zero-dropped-messages drain
// guarantee is forfeited.
func (s *System) CloseContext(ctx context.Context) error {
	if s.closed.Swap(true) {
		return ErrClosed
	}
	drainErr := s.runtime.FlushContext(ctx)
	if s.concurrent != nil {
		s.concurrent.Close()
	}
	s.handles.Range(func(_, h any) bool {
		h.(*SubscriptionHandle).closeSink()
		return true
	})
	return drainErr
}

// TopologyBuilder builds a hand-crafted deployment: an explicit node graph
// with sensors placed on chosen nodes. It is the public way to model a small
// concrete network (the examples use it for the paper's six-node walkthrough
// topology).
type TopologyBuilder struct {
	graph   *topology.Graph
	sensors []Sensor
	hosts   map[SensorID]NodeID
	err     error
}

// NewTopology starts a builder for a network of n processing nodes
// (identified 0..n-1).
func NewTopology(n int) *TopologyBuilder {
	return &TopologyBuilder{graph: topology.NewGraph(n), hosts: map[SensorID]NodeID{}}
}

// Link connects two nodes and returns the builder for chaining.
func (b *TopologyBuilder) Link(a, c NodeID) *TopologyBuilder {
	if b.err == nil {
		b.err = b.graph.AddEdge(a, c)
	}
	return b
}

// PlaceSensor attaches a sensor to a node and returns the builder.
func (b *TopologyBuilder) PlaceSensor(node NodeID, sensor Sensor) *TopologyBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.hosts[sensor.ID]; dup {
		b.err = fmt.Errorf("sensorcq: sensor %s placed twice", sensor.ID)
		return b
	}
	b.sensors = append(b.sensors, sensor)
	b.hosts[sensor.ID] = node
	return b
}

// Build validates the topology (it must be a connected acyclic graph) and
// returns the deployment.
func (b *TopologyBuilder) Build() (*Deployment, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.graph.Validate(); err != nil {
		return nil, err
	}
	dep := &Deployment{
		Graph:       b.graph,
		SensorHost:  map[model.SensorID]topology.NodeID{},
		NodeSensors: map[topology.NodeID][]model.Sensor{},
	}
	sensorNodes := map[NodeID]bool{}
	for _, s := range b.sensors {
		node := b.hosts[s.ID]
		dep.Sensors = append(dep.Sensors, s)
		dep.SensorHost[s.ID] = node
		dep.NodeSensors[node] = append(dep.NodeSensors[node], s)
		sensorNodes[node] = true
	}
	for n := 0; n < b.graph.NumNodes(); n++ {
		if !sensorNodes[NodeID(n)] {
			dep.RelayNodes = append(dep.RelayNodes, NodeID(n))
			dep.UserNodes = append(dep.UserNodes, NodeID(n))
		}
	}
	return dep, nil
}
