package sensorcq

import (
	"fmt"

	"sensorcq/internal/experiment"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
)

// Approach names one of the five evaluated query-processing approaches.
type Approach = experiment.ApproachID

// The five approaches of the paper's evaluation (Table II).
const (
	// Centralized ships every subscription and every reading to a central
	// node with global knowledge and matches there.
	Centralized = experiment.Centralized
	// Naive forwards every subscription with no filtering and builds one
	// result set per subscription.
	Naive = experiment.Naive
	// OperatorPlacement shares identical and covering operators between
	// queries (pairwise covering) with per-subscription result sets.
	OperatorPlacement = experiment.OperatorPlacement
	// MultiJoin decomposes multi-joins into binary joins at the first
	// divergence node, with publish/subscribe event forwarding.
	MultiJoin = experiment.MultiJoin
	// FilterSplitForward is the paper's contribution: probabilistic set
	// subsumption, advertisement-driven splitting and per-neighbour
	// publish/subscribe event forwarding.
	FilterSplitForward = experiment.FilterSplitForward
)

// Approaches returns every available approach, centralized first.
func Approaches() []Approach { return experiment.All() }

// Config selects the approach and runtime of a System.
type Config struct {
	// Approach is the query-processing approach to run (default
	// FilterSplitForward).
	Approach Approach
	// Seed drives the probabilistic set filter of FilterSplitForward.
	Seed int64
	// SetFilterError overrides the FSF set-filter error probability
	// (0 keeps the default of 2%).
	SetFilterError float64
	// Concurrent runs one goroutine per processing node instead of the
	// deterministic sequential engine.
	Concurrent bool
	// Delivery selects the replay delivery semantics used by ReplayRounds
	// and ReplayTrace: Quiescent (the default) fully propagates every
	// event before injecting the next one; Pipelined injects a whole
	// measurement round before draining, which is what lets a Concurrent
	// system evaluate a round in parallel.
	//
	// Pipelined runs produce the same traffic totals and the same
	// per-round delivery multisets as quiescent runs — only the delivery
	// order within a round may differ — provided every subscription's
	// temporal correlation distance δt is at least the timestamp spread
	// within one replayed round (the experiment traces satisfy this: one
	// reading per sensor per round, δt = one round interval). With a
	// smaller δt, out-of-order arrival within a round can prune window
	// events a quiescent run would still have matched, and pipelined
	// deliveries may diverge.
	//
	// Windowed additionally overlaps successive rounds: ReplayRounds and
	// ReplayTrace inject round r+1..r+Lag while round r is still draining,
	// gated on the network watermark. Nodes are built with an event-window
	// validity factor of Lag+2 so the cross-round arrival skew cannot
	// prune events still needed by a late trigger; with that, windowed
	// runs keep the quiescent run's traffic totals and per-round delivery
	// multisets (deliveries are stamped with the round of their newest
	// component, which does not depend on interleaving).
	Delivery DeliveryMode
	// Lag bounds the cross-round pipelining of the Windowed delivery mode:
	// how many rounds beyond the oldest still-draining round may be in
	// flight. It must be 0 unless Delivery is Windowed; Windowed with
	// Lag 0 behaves exactly like Pipelined.
	Lag int
}

// System is a running sensor network: a deployment whose processing nodes
// execute the chosen approach. It is the main entry point of the public API.
type System struct {
	dep        *Deployment
	runtime    netsim.Runtime
	concurrent *netsim.ConcurrentEngine
	approach   Approach
	delivery   DeliveryMode
	lag        int
}

// TrafficStats summarises the traffic generated so far.
type TrafficStats struct {
	// AdvertisementLoad counts forwarded advertisements.
	AdvertisementLoad int64
	// SubscriptionLoad counts forwarded subscriptions/operators — the
	// paper's "number of forwarded queries".
	SubscriptionLoad int64
	// EventLoad counts forwarded simple events — the paper's "number of
	// forwarded data units".
	EventLoad int64
}

// NewSystem builds a System over the deployment, attaches and advertises
// every sensor of the deployment, and returns it ready for Subscribe and
// Publish calls.
func NewSystem(dep *Deployment, cfg Config) (*System, error) {
	if dep == nil || dep.Graph == nil {
		return nil, fmt.Errorf("sensorcq: nil deployment")
	}
	if cfg.Approach == "" {
		cfg.Approach = FilterSplitForward
	}
	if cfg.Lag < 0 {
		return nil, fmt.Errorf("sensorcq: negative replay lag %d", cfg.Lag)
	}
	if cfg.Lag > 0 && cfg.Delivery != Windowed {
		return nil, fmt.Errorf("sensorcq: replay lag %d requires the windowed delivery mode (got %v)", cfg.Lag, cfg.Delivery)
	}
	factory, err := experiment.FactoryForSpec(cfg.Approach, experiment.FactorySpec{
		Seed:           cfg.Seed,
		SetFilterError: cfg.SetFilterError,
		ValidityFactor: netsim.RequiredValidityFactor(cfg.Delivery, cfg.Lag),
	})
	if err != nil {
		return nil, err
	}
	sys := &System{dep: dep, approach: cfg.Approach, delivery: cfg.Delivery, lag: cfg.Lag}
	if cfg.Concurrent {
		conc := netsim.NewConcurrentEngine(dep.Graph, factory)
		sys.runtime = conc
		sys.concurrent = conc
	} else {
		sys.runtime = netsim.NewEngine(dep.Graph, factory)
	}
	for _, sensor := range dep.Sensors {
		host, ok := dep.SensorHost[sensor.ID]
		if !ok {
			sys.Close()
			return nil, fmt.Errorf("sensorcq: sensor %s has no host node", sensor.ID)
		}
		if err := sys.runtime.AttachSensor(host, sensor); err != nil {
			sys.Close()
			return nil, fmt.Errorf("sensorcq: attaching sensor %s: %w", sensor.ID, err)
		}
	}
	sys.runtime.Flush()
	return sys, nil
}

// Approach returns the approach this system runs.
func (s *System) Approach() Approach { return s.approach }

// Deployment returns the underlying deployment.
func (s *System) Deployment() *Deployment { return s.dep }

// Subscribe registers a user subscription at the given processing node.
func (s *System) Subscribe(node NodeID, sub *Subscription) error {
	if err := s.runtime.Subscribe(node, sub); err != nil {
		return err
	}
	s.runtime.Flush()
	return nil
}

// Publish injects a sensor reading. The event's Sensor must be part of the
// deployment; the reading enters the network at the node hosting it.
func (s *System) Publish(ev Event) error {
	host, ok := s.dep.SensorHost[ev.Sensor]
	if !ok {
		return fmt.Errorf("sensorcq: unknown sensor %s", ev.Sensor)
	}
	return s.PublishAt(host, ev)
}

// PublishAt injects a reading at an explicit node (for hand-built
// deployments or readings of sensors attached after construction).
func (s *System) PublishAt(node NodeID, ev Event) error {
	if err := s.runtime.Publish(node, ev); err != nil {
		return err
	}
	s.runtime.Flush()
	return nil
}

// PublishBatch injects a trace of readings in order through the runtime's
// batched path: the whole batch is validated first (unknown sensors reject
// the batch before any event enters the network), then every event is
// published and fully propagated in order. The observable behaviour is
// identical to calling Publish per event; the batch amortizes per-event
// bookkeeping, which matters when replaying long traces.
func (s *System) PublishBatch(events []Event) error {
	batch := make([]netsim.Publication, len(events))
	for i, ev := range events {
		host, ok := s.dep.SensorHost[ev.Sensor]
		if !ok {
			return fmt.Errorf("sensorcq: unknown sensor %s", ev.Sensor)
		}
		batch[i] = netsim.Publication{Node: host, Event: ev}
	}
	if err := s.runtime.PublishBatch(batch); err != nil {
		return err
	}
	s.runtime.Flush()
	return nil
}

// Replay publishes every event of a trace in order (an alias for
// PublishBatch kept for readability at call sites). It always uses quiescent
// semantics; use ReplayRounds or ReplayTrace for the configured Delivery
// mode.
func (s *System) Replay(events []Event) error {
	return s.PublishBatch(events)
}

// ReplayRounds replays a trace structured as measurement rounds under the
// system's configured Delivery mode. With Delivery: Pipelined on a
// Concurrent system, each round is evaluated by all processing nodes in
// parallel; the network is drained to quiescence between rounds.
func (s *System) ReplayRounds(rounds [][]Event) error {
	pubRounds := make([][]netsim.Publication, len(rounds))
	for r, events := range rounds {
		pubRounds[r] = make([]netsim.Publication, len(events))
		for i, ev := range events {
			host, ok := s.dep.SensorHost[ev.Sensor]
			if !ok {
				return fmt.Errorf("sensorcq: unknown sensor %s", ev.Sensor)
			}
			pubRounds[r][i] = netsim.Publication{Node: host, Event: ev}
		}
	}
	if err := s.runtime.ReplayRounds(pubRounds, netsim.ReplayOptions{Mode: s.delivery, Lag: s.lag}); err != nil {
		return err
	}
	s.runtime.Flush()
	return nil
}

// ReplayTrace replays a generated trace round by round under the system's
// configured Delivery mode.
func (s *System) ReplayTrace(trace *Trace) error {
	if trace == nil {
		return fmt.Errorf("sensorcq: nil trace")
	}
	return s.ReplayRounds(trace.ByRound)
}

// DroppedMessages returns the number of messages the runtime failed to
// enqueue (non-zero only if a send raced engine shutdown).
func (s *System) DroppedMessages() int64 {
	return s.runtime.Metrics().DroppedMessages()
}

// Watermark returns the network low-watermark: the highest replay round
// whose work has been fully processed. After a drained replay it equals the
// number of rounds replayed so far; during a Windowed replay it trails the
// injection frontier by at most Lag+1 rounds.
func (s *System) Watermark() int { return s.runtime.Watermark() }

// Traffic returns the accumulated traffic counters.
func (s *System) Traffic() TrafficStats {
	snap := s.runtime.Metrics().Snapshot()
	return TrafficStats{
		AdvertisementLoad: snap.AdvertisementLoad,
		SubscriptionLoad:  snap.SubscriptionLoad,
		EventLoad:         snap.EventLoad,
	}
}

// Deliveries returns every complex event delivered to subscribing users so
// far, in delivery order.
func (s *System) Deliveries() []Delivery { return s.runtime.Deliveries() }

// DeliveriesFor returns the deliveries of one subscription.
func (s *System) DeliveriesFor(id SubscriptionID) []Delivery {
	var out []Delivery
	for _, d := range s.runtime.Deliveries() {
		if d.SubID == id {
			out = append(out, d)
		}
	}
	return out
}

// DeliveredEventSeqs returns the set of simple-event sequence numbers that
// reached the user of the given subscription.
func (s *System) DeliveredEventSeqs(id SubscriptionID) map[uint64]bool {
	return s.runtime.Metrics().DeliveredSeqs(id)
}

// Close releases the per-node goroutines of a concurrent system; it is a
// no-op for the sequential runtime.
func (s *System) Close() {
	if s.concurrent != nil {
		s.concurrent.Flush()
		s.concurrent.Close()
	}
}

// TopologyBuilder builds a hand-crafted deployment: an explicit node graph
// with sensors placed on chosen nodes. It is the public way to model a small
// concrete network (the examples use it for the paper's six-node walkthrough
// topology).
type TopologyBuilder struct {
	graph   *topology.Graph
	sensors []Sensor
	hosts   map[SensorID]NodeID
	err     error
}

// NewTopology starts a builder for a network of n processing nodes
// (identified 0..n-1).
func NewTopology(n int) *TopologyBuilder {
	return &TopologyBuilder{graph: topology.NewGraph(n), hosts: map[SensorID]NodeID{}}
}

// Link connects two nodes and returns the builder for chaining.
func (b *TopologyBuilder) Link(a, c NodeID) *TopologyBuilder {
	if b.err == nil {
		b.err = b.graph.AddEdge(a, c)
	}
	return b
}

// PlaceSensor attaches a sensor to a node and returns the builder.
func (b *TopologyBuilder) PlaceSensor(node NodeID, sensor Sensor) *TopologyBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.hosts[sensor.ID]; dup {
		b.err = fmt.Errorf("sensorcq: sensor %s placed twice", sensor.ID)
		return b
	}
	b.sensors = append(b.sensors, sensor)
	b.hosts[sensor.ID] = node
	return b
}

// Build validates the topology (it must be a connected acyclic graph) and
// returns the deployment.
func (b *TopologyBuilder) Build() (*Deployment, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.graph.Validate(); err != nil {
		return nil, err
	}
	dep := &Deployment{
		Graph:       b.graph,
		SensorHost:  map[model.SensorID]topology.NodeID{},
		NodeSensors: map[topology.NodeID][]model.Sensor{},
	}
	sensorNodes := map[NodeID]bool{}
	for _, s := range b.sensors {
		node := b.hosts[s.ID]
		dep.Sensors = append(dep.Sensors, s)
		dep.SensorHost[s.ID] = node
		dep.NodeSensors[node] = append(dep.NodeSensors[node], s)
		sensorNodes[node] = true
	}
	for n := 0; n < b.graph.NumNodes(); n++ {
		if !sensorNodes[NodeID(n)] {
			dep.RelayNodes = append(dep.RelayNodes, NodeID(n))
			dep.UserNodes = append(dep.UserNodes, NodeID(n))
		}
	}
	return dep, nil
}
