// Quickstart: build a small six-node sensor network by hand, register a
// correlation subscription with the Filter-Split-Forward approach, publish a
// few readings and observe the delivered complex event and the traffic it
// cost. This is the paper's running example (Table I / Figure 3) in ~60
// lines of application code.
package main

import (
	"fmt"
	"log"

	"sensorcq"
)

func main() {
	// Topology: two hubs, a user node, and three sensors a (ambient
	// temperature), b (relative humidity) and c (wind speed).
	//
	//	sensor a (0)   sensor b (1)
	//	        \       /
	//	         hub (3) --- hub (4) --- user (5)
	//	                      |
	//	                 sensor c (2)
	dep, err := sensorcq.NewTopology(6).
		Link(5, 4).Link(4, 3).Link(3, 0).Link(3, 1).Link(4, 2).
		PlaceSensor(0, sensorcq.Sensor{ID: "a", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(1, sensorcq.Sensor{ID: "b", Attr: sensorcq.RelativeHumidity}).
		PlaceSensor(2, sensorcq.Sensor{ID: "c", Attr: sensorcq.WindSpeed}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// "Tell me when it is mild (50..80) at sensor a while humidity at sensor
	// b is between 10 and 30, within 30 seconds of each other."
	sub, err := sensorcq.NewIdentifiedSubscription("mild-and-dry", []sensorcq.SensorFilter{
		{Sensor: "a", Attr: sensorcq.AmbientTemperature, Range: sensorcq.NewInterval(50, 80)},
		{Sensor: "b", Attr: sensorcq.RelativeHumidity, Range: sensorcq.NewInterval(10, 30)},
	}, 30)
	if err != nil {
		log.Fatal(err)
	}
	handle, err := sys.Subscribe(5, sub)
	if err != nil {
		log.Fatal(err)
	}

	readings := []sensorcq.Event{
		{Seq: 1, Sensor: "a", Attr: sensorcq.AmbientTemperature, Value: 62, Time: 100},
		{Seq: 2, Sensor: "c", Attr: sensorcq.WindSpeed, Value: 7, Time: 101}, // nobody asked: dropped at source
		{Seq: 3, Sensor: "b", Attr: sensorcq.RelativeHumidity, Value: 22, Time: 105},
		{Seq: 4, Sensor: "a", Attr: sensorcq.AmbientTemperature, Value: 95, Time: 200}, // out of range: dropped
	}
	if err := sys.Replay(readings); err != nil {
		log.Fatal(err)
	}

	// Results are pushed to the handle's delivery channel as they are
	// produced; Unsubscribe retracts the query network-wide and closes the
	// channel, so ranging over it terminates with the subscription.
	if err := handle.Unsubscribe(); err != nil {
		log.Fatal(err)
	}
	for d := range handle.Deliveries() {
		fmt.Printf("complex event delivered to node %d:\n", d.Node)
		for _, e := range d.Events {
			fmt.Printf("  %s\n", e)
		}
	}

	// The query is gone from every node: the same mild-and-dry conditions no
	// longer produce deliveries or event traffic.
	after := sys.Traffic().EventLoad
	if err := sys.Replay([]sensorcq.Event{
		{Seq: 5, Sensor: "a", Attr: sensorcq.AmbientTemperature, Value: 60, Time: 300},
		{Seq: 6, Sensor: "b", Attr: sensorcq.RelativeHumidity, Value: 25, Time: 301},
	}); err != nil {
		log.Fatal(err)
	}

	traffic := sys.Traffic()
	fmt.Printf("notifications delivered: %d (pushed to the handle's channel)\n", handle.Delivered())
	fmt.Printf("after unsubscribe:       %d further data units forwarded\n", traffic.EventLoad-after)
	fmt.Printf("traffic: %d advertisement, %d subscription, %d unsubscription, %d event link traversals\n",
		traffic.AdvertisementLoad, traffic.SubscriptionLoad, traffic.UnsubscriptionLoad, traffic.EventLoad)
}
