// Recall/traffic trade-off: the Filter-Split-Forward approach relies on a
// probabilistic set-subsumption check whose error probability is a user
// parameter (Section VI-F). Lower error probabilities cost more processing
// but lose fewer events; higher ones filter more aggressively and may drop
// subscriptions that were not actually covered. This example sweeps the
// error probability on a fixed workload and prints the resulting
// subscription load, event load and end-user recall, reproducing the
// trade-off the paper discusses alongside Figure 12.
package main

import (
	"fmt"
	"log"

	"sensorcq"
)

func main() {
	scenario := sensorcq.QuickScale(sensorcq.SmallScaleScenario())
	scenario.Batches = 5
	scenario.BatchSize = 60

	fmt.Printf("scenario: %s, %d subscriptions, %d measurement rounds\n\n",
		scenario.Name, scenario.TotalSubscriptions(), scenario.TotalRounds())
	fmt.Printf("%-12s %-18s %-12s %-8s\n", "error prob", "subscription load", "event load", "recall")

	for _, errProb := range []float64{0.001, 0.02, 0.1, 0.3, 0.6} {
		s := scenario
		s.SetFilterError = errProb
		res, err := sensorcq.RunExperiment(s, &sensorcq.ExperimentOptions{
			Approaches:    []sensorcq.Approach{sensorcq.FilterSplitForward},
			ComputeRecall: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		final := res.SeriesFor(sensorcq.FilterSplitForward).Final()
		fmt.Printf("%-12g %-18d %-12d %.1f%%\n",
			errProb, final.SubscriptionLoad, final.EventLoad, final.Recall*100)
	}

	fmt.Println("\nSmaller error probabilities sample more points per subsumption decision and")
	fmt.Println("never drop an uncovered subscription by mistake; larger ones trade a little")
	fmt.Println("recall for cheaper filtering, which is acceptable for most monitoring uses.")
}
