// Daemon example: run the cqd service in-process and drive it over HTTP the
// way a remote client would — register a subscription on the control plane,
// ingest readings as an NDJSON batch, watch the complex event arrive on the
// SSE data plane, read /metrics, retract, and shut down gracefully. Every
// step prints the curl equivalent so the flow can be replayed against a
// real `cqd -demo` process.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"sensorcq"
	"sensorcq/internal/server"
)

// newDemoServer builds the six-node walkthrough network (the same one
// `cqd -demo` serves) and wraps it in the HTTP service.
func newDemoServer() (*server.Server, *sensorcq.System) {
	dep, err := sensorcq.NewTopology(6).
		Link(5, 4).Link(4, 3).Link(3, 0).Link(3, 1).Link(4, 2).
		PlaceSensor(0, sensorcq.Sensor{ID: "a", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(1, sensorcq.Sensor{ID: "b", Attr: sensorcq.RelativeHumidity}).
		PlaceSensor(2, sensorcq.Sensor{ID: "c", Attr: sensorcq.WindSpeed}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(sys, server.Config{DefaultNode: 5})
	if err != nil {
		log.Fatal(err)
	}
	return srv, sys
}

func post(url, contentType, body string) {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func get(url string) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func del(url string) {
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func show(resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %s %s", resp.Request.Method, resp.Request.URL, resp.Status, body)
	}
	if len(body) > 0 {
		fmt.Printf("  %s %s", resp.Status, body)
	} else {
		fmt.Printf("  %s\n", resp.Status)
	}
}

func main() {
	srv, sys := newDemoServer()
	defer sys.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s (cqd -demo serves the same network)\n\n", base)

	// Control plane: register the walkthrough subscription.
	spec := `{"id":"mild-and-dry","delta_t":30,"sensors":[` +
		`{"sensor":"a","min":50,"max":80},{"sensor":"b","min":10,"max":30}]}`
	fmt.Printf("$ curl -X POST %s/subscriptions -d '%s'\n", base, spec)
	post(base+"/subscriptions", "application/json", spec)

	// Data plane: stream the subscription's complex events.
	fmt.Printf("$ curl -N %s/subscriptions/mild-and-dry/stream &\n", base)
	stream, err := http.Get(base + "/subscriptions/mild-and-dry/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan string)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") || strings.HasPrefix(line, "data: ") {
				frames <- line
			}
		}
	}()

	// Ingest a round of readings as one NDJSON batch. Readings from sensors
	// nobody subscribed to (c) or outside the ranges are filtered near their
	// sources and never reach the user node.
	batch := `{"seq":1,"sensor":"a","value":62,"time":100}` + "\n" +
		`{"seq":2,"sensor":"c","value":7,"time":101}` + "\n" +
		`{"seq":3,"sensor":"b","value":22,"time":105}` + "\n"
	fmt.Printf("\n$ curl -X POST %s/events -H 'Content-Type: application/x-ndjson' --data-binary $'...'\n", base)
	post(base+"/events", "application/x-ndjson", batch)

	// The matching pair (a=62, b=22 within δt=30) correlates into one
	// complex event, pushed to the stream.
	fmt.Println("\nSSE frames:")
	for line := range frames {
		fmt.Printf("  %s\n", line)
		if strings.HasPrefix(line, "data: {\"subscription\"") {
			break
		}
	}

	fmt.Printf("\n$ curl %s/metrics\n", base)
	get(base + "/metrics")

	// Retract: the network forgets the query and the stream ends.
	fmt.Printf("\n$ curl -X DELETE %s/subscriptions/mild-and-dry\n", base)
	del(base + "/subscriptions/mild-and-dry")
	for line := range frames {
		fmt.Printf("  %s\n", line)
		if line == "event: end" {
			break
		}
	}
	for range frames {
	}

	// Graceful shutdown: drain in-flight work, close every handle, stop the
	// listener (cqd does the same on SIGTERM).
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndaemon shut down cleanly")
}
