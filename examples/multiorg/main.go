// Multi-organisation federation: the paper's argument for a fully
// distributed design is that data providers (different research groups,
// meteo services, cantonal authorities) are reluctant to ship their raw
// streams to a central repository. This example builds a federation of three
// organisations, each operating its own field sites, compares the
// centralized baseline against Filter-Split-Forward on identical inputs and
// reports how many raw readings each organisation would have had to export
// to the central node versus how many actually crossed its boundary with
// in-network filtering.
package main

import (
	"fmt"
	"log"

	"sensorcq"
)

func main() {
	// 45 nodes: 30 sensor nodes in 6 sites (2 sites per organisation), the
	// rest relays/user nodes.
	dep, err := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  45,
		SensorNodes: 30,
		Groups:      6,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        99,
	})
	if err != nil {
		log.Fatal(err)
	}
	trace, err := sensorcq.GenerateTrace(dep, sensorcq.TraceConfig{
		Rounds:        24,
		RoundInterval: 1800,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}
	subs, err := sensorcq.GenerateWorkload(dep, trace, sensorcq.WorkloadConfig{
		Count:    60,
		MinAttrs: 3,
		MaxAttrs: 5,
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: %d sites run by 3 organisations, %d sensors, %d readings, %d subscriptions\n\n",
		len(dep.GroupHubs), len(dep.Sensors), trace.NumEvents(), len(subs))

	for _, approach := range []sensorcq.Approach{sensorcq.Centralized, sensorcq.FilterSplitForward} {
		sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: approach, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range subs {
			if _, err := sys.Subscribe(p.Node, p.Sub); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Replay(trace.Events); err != nil {
			log.Fatal(err)
		}
		t := sys.Traffic()
		delivered := 0
		for _, p := range subs {
			delivered += len(sys.DeliveredEventSeqs(p.Sub.ID))
		}
		fmt.Printf("%-22s subscription load %5d, event load %6d, %d matching readings delivered\n",
			approach, t.SubscriptionLoad, t.EventLoad, delivered)
		sys.Close()
	}

	fmt.Println("\nWith the centralized baseline every reading of every organisation crosses the")
	fmt.Println("federation to the central repository whether or not anyone subscribed to it;")
	fmt.Println("filter-split-forward keeps unrequested readings inside the organisation that")
	fmt.Println("produced them and only exports data that contributes to a subscribed correlation.")
}
