// Alpine monitoring: the paper's motivating scenario. A Swiss-Experiment
// style federation of ten high-alpine field sites (base stations), each with
// five sensors, serves abstract subscriptions like "alert me when, somewhere
// on this site, it is freezing while the wind exceeds 40 km/h" — a frost/
// wind-chill warning. The example generates a realistic synthetic trace,
// registers warning subscriptions for every site, replays a day of
// measurements and compares the traffic of Filter-Split-Forward against the
// naive distributed approach on exactly the same inputs.
package main

import (
	"fmt"
	"log"

	"sensorcq"
)

func main() {
	dep, err := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
		TotalNodes:  60,
		SensorNodes: 50,
		Groups:      10,
		Attributes:  sensorcq.DefaultAttributes(),
		Seed:        2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	// One day of measurements at a 30-minute sampling period.
	trace, err := sensorcq.GenerateTrace(dep, sensorcq.TraceConfig{
		Rounds:        48,
		RoundInterval: 1800,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: %d nodes, %d sensors, %d sites; trace: %d readings\n",
		dep.Graph.NumNodes(), len(dep.Sensors), len(dep.GroupHubs), trace.NumEvents())

	for _, approach := range []sensorcq.Approach{sensorcq.Naive, sensorcq.FilterSplitForward} {
		load, alerts, err := run(dep, trace, approach)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s event load %6d data units, %3d frost/wind alerts delivered\n",
			approach, load, alerts)
	}
}

// run registers one frost/wind-chill warning per field site plus a couple of
// overlapping, more specific ones, replays the trace and reports the event
// traffic and the number of delivered alerts.
func run(dep *sensorcq.Deployment, trace *sensorcq.Trace, approach sensorcq.Approach) (int64, int, error) {
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: approach, Seed: 42})
	if err != nil {
		return 0, 0, err
	}
	defer sys.Close()

	userNode := dep.UserNodes[0]
	var subIDs []sensorcq.SubscriptionID
	for site, region := range dep.GroupRegions {
		// Frost + strong wind anywhere on the site, within one sampling
		// period.
		broad, err := sensorcq.NewAbstractSubscription(
			sensorcq.SubscriptionID(fmt.Sprintf("site%02d-wind-chill", site)),
			[]sensorcq.AttributeFilter{
				{Attr: sensorcq.AmbientTemperature, Range: sensorcq.NewInterval(-30, 0)},
				{Attr: sensorcq.WindSpeed, Range: sensorcq.NewInterval(8, 60)},
			},
			region, 1800, sensorcq.NoSpatialConstraint)
		if err != nil {
			return 0, 0, err
		}
		// A stricter variant issued by another scientist; it is fully
		// covered by the broad one, so the filter phase should avoid
		// injecting it deep into the network.
		strict, err := sensorcq.NewAbstractSubscription(
			sensorcq.SubscriptionID(fmt.Sprintf("site%02d-severe", site)),
			[]sensorcq.AttributeFilter{
				{Attr: sensorcq.AmbientTemperature, Range: sensorcq.NewInterval(-20, -5)},
				{Attr: sensorcq.WindSpeed, Range: sensorcq.NewInterval(12, 40)},
			},
			region, 1800, sensorcq.NoSpatialConstraint)
		if err != nil {
			return 0, 0, err
		}
		for _, sub := range []*sensorcq.Subscription{broad, strict} {
			if _, err := sys.Subscribe(userNode, sub); err != nil {
				return 0, 0, err
			}
			subIDs = append(subIDs, sub.ID)
		}
	}

	if err := sys.Replay(trace.Events); err != nil {
		return 0, 0, err
	}
	alerts := 0
	for _, id := range subIDs {
		alerts += len(sys.DeliveriesFor(id))
	}
	return sys.Traffic().EventLoad, alerts, nil
}
