// Aggregate example: a windowed median query over HTTP. A seven-node
// dissemination tree hosts four ambient-temperature sensors; the query asks
// for the per-window median of every reading, so each node folds its own
// readings into a q-digest sketch, merges its children's partials and ships
// one partial per window upstream — traffic scales with the tree's fan-in,
// not the reading count. The program registers the query on the control
// plane, ingests one NDJSON batch per measurement round, streams the
// finalised windows off the SSE data plane and reads the partial-aggregate
// traffic from /metrics. Every step prints the curl equivalent so the flow
// can be replayed against a real `cqd` process.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"sensorcq"
	"sensorcq/internal/server"
)

// newAggServer builds a depth-three tree — subscriber 0 at the root, sensor
// hosts 3..6 at the leaves — behind the HTTP service:
//
//	0 — 1 — 3 (t1), 4 (t2)
//	  \ 2 — 5 (t3), 6 (t4)
func newAggServer() (*server.Server, *sensorcq.System) {
	dep, err := sensorcq.NewTopology(7).
		Link(0, 1).Link(0, 2).Link(1, 3).Link(1, 4).Link(2, 5).Link(2, 6).
		PlaceSensor(3, sensorcq.Sensor{ID: "t1", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(4, sensorcq.Sensor{ID: "t2", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(5, sensorcq.Sensor{ID: "t3", Attr: sensorcq.AmbientTemperature}).
		PlaceSensor(6, sensorcq.Sensor{ID: "t4", Attr: sensorcq.AmbientTemperature}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(sys, server.Config{DefaultNode: 0})
	if err != nil {
		log.Fatal(err)
	}
	return srv, sys
}

func post(url, contentType, body string) {
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	show(resp)
}

func show(resp *http.Response) {
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %s %s", resp.Request.Method, resp.Request.URL, resp.Status, body)
	}
	if len(body) > 0 {
		fmt.Printf("  %s %s", resp.Status, body)
	} else {
		fmt.Printf("  %s\n", resp.Status)
	}
}

func main() {
	srv, sys := newAggServer()
	defer sys.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("aggregation daemon listening on %s\n\n", base)

	// Control plane: a continuous median query — the 0.5-quantile of every
	// ambient-temperature reading, grouped into tumbling two-round windows,
	// sketched over the domain [-25, 25] with k=16 (rank error ε = 10/16).
	spec := fmt.Sprintf(`{"id":"median-temp","attributes":[{"attr":%q,"min":-25,"max":25}],`+
		`"aggregate":{"func":"quantile","quantile":0.5,"window_rounds":2,"lo":-25,"hi":25,"bits":10,"k":16}}`,
		string(sensorcq.AmbientTemperature))
	fmt.Printf("$ curl -X POST %s/subscriptions -d '%s'\n", base, spec)
	post(base+"/subscriptions", "application/json", spec)

	// Data plane: stream the finalised windows.
	fmt.Printf("$ curl -N %s/subscriptions/median-temp/stream &\n", base)
	stream, err := http.Get(base + "/subscriptions/median-temp/stream")
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Body.Close()
	frames := make(chan string)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") || strings.HasPrefix(line, "data: ") {
				frames <- line
			}
		}
	}()

	// Each NDJSON batch is one measurement round; every two rounds close a
	// window and exactly one partial per tree edge travels upstream.
	rounds := []string{
		`{"sensor":"t1","value":4,"time":100}` + "\n" + `{"sensor":"t2","value":6,"time":100}` + "\n" +
			`{"sensor":"t3","value":8,"time":100}` + "\n" + `{"sensor":"t4","value":2,"time":100}`,
		`{"sensor":"t1","value":5,"time":220}` + "\n" + `{"sensor":"t2","value":7,"time":220}` + "\n" +
			`{"sensor":"t3","value":9,"time":220}` + "\n" + `{"sensor":"t4","value":3,"time":220}`,
		`{"sensor":"t1","value":-2,"time":340}` + "\n" + `{"sensor":"t2","value":-4,"time":340}` + "\n" +
			`{"sensor":"t3","value":-6,"time":340}` + "\n" + `{"sensor":"t4","value":-8,"time":340}`,
		`{"sensor":"t1","value":-1,"time":460}` + "\n" + `{"sensor":"t2","value":-3,"time":460}` + "\n" +
			`{"sensor":"t3","value":-5,"time":460}` + "\n" + `{"sensor":"t4","value":-7,"time":460}`,
	}
	for r, batch := range rounds {
		fmt.Printf("\n$ curl -X POST %s/events -H 'Content-Type: application/x-ndjson' --data-binary $'...'  # round %d\n", base, r+1)
		post(base+"/events", "application/x-ndjson", batch)
		if (r+1)%2 == 0 {
			// The watermark just closed a window; its median arrives as one
			// SSE frame.
			for line := range frames {
				fmt.Printf("  %s\n", line)
				if strings.HasPrefix(line, "data: ") {
					break
				}
			}
		}
	}

	// /metrics shows the upstream partial-aggregate traffic: six tree edges
	// times two closed windows, instead of one relay per reading per hop.
	fmt.Printf("\n$ curl %s/metrics\n", base)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	show(resp)

	// Graceful shutdown drains in-flight work and ends the stream.
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	for range frames {
	}
	if err := httpSrv.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\naggregation daemon shut down cleanly")
}
