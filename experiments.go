package sensorcq

import (
	"io"

	"sensorcq/internal/experiment"
	"sensorcq/internal/report"
)

// The paper's four experimental scenarios (Section VI).

// SmallScaleScenario is the 60-node experiment of Section VI-C.
func SmallScaleScenario() Scenario { return experiment.SmallScale() }

// MediumScaleScenario is the 100-node experiment of Section VI-D (the one
// that also includes the centralized baseline).
func MediumScaleScenario() Scenario { return experiment.MediumScale() }

// LargeScaleNetworkScenario is the 200-node / 50-sensor experiment of
// Section VI-E.
func LargeScaleNetworkScenario() Scenario { return experiment.LargeScaleNetwork() }

// LargeScaleSourcesScenario is the 200-node / 100-sensor experiment of
// Section VI-E.
func LargeScaleSourcesScenario() Scenario { return experiment.LargeScaleSources() }

// AllScenarios returns the four scenarios in paper order.
func AllScenarios() []Scenario { return experiment.AllScenarios() }

// QuickScale shrinks a scenario's workload (not its network) to a size that
// runs in a couple of seconds; useful for smoke tests and demos.
func QuickScale(s Scenario) Scenario { return experiment.QuickScale(s) }

// RunExperiment executes a scenario for every relevant approach on one
// shared workload and returns the per-approach measurement series. Pass nil
// options for the defaults (all distributed approaches, recall measured).
func RunExperiment(s Scenario, opts *ExperimentOptions) (*Result, error) {
	return experiment.Run(s, opts)
}

// WriteReport renders a result as fixed-width tables (summary, subscription
// load, event load, recall) plus an ASCII chart.
func WriteReport(w io.Writer, res *Result) error { return report.WriteAll(w, res) }

// WriteReportCSV renders a result as CSV, one row per approach and
// measurement point.
func WriteReportCSV(w io.Writer, res *Result) error { return report.WriteCSV(w, res) }
