// Package sensorcq is a library for evaluating continuous multi-join queries
// (subscriptions) over distributed sensor networks. It reproduces the system
// described in "Continuous Query Evaluation over Distributed Sensor
// Networks" (Jurca, Michel, Herrmann, Aberer — ICDE 2010): a
// publish/subscribe layer over an acyclic network of processing nodes in
// which subscriptions are filtered, split and forwarded towards the sensors
// along reverse advertisement paths, and sensor readings are correlated into
// complex events as close to their sources as possible.
//
// The package exposes:
//
//   - the data model (sensors, advertisements, events, filters, identified
//     and abstract subscriptions),
//   - the five protocol variants evaluated in the paper (centralized, naive,
//     distributed operator placement, distributed multi-join, and the
//     paper's Filter-Split-Forward approach),
//   - deployment, trace and workload generators that emulate the paper's
//     SensorScope-based evaluation, and
//   - the experiment harness and report writers that regenerate every figure
//     of the paper's evaluation section.
//
// Most applications start from GenerateDeployment (or NewTopology for a
// hand-built network), create a System with the approach of their choice,
// register subscriptions and publish readings:
//
//	dep, _ := sensorcq.GenerateDeployment(sensorcq.DeploymentConfig{
//	    TotalNodes: 60, SensorNodes: 50, Groups: 10,
//	    Attributes: sensorcq.DefaultAttributes(), Seed: 1,
//	})
//	sys, _ := sensorcq.NewSystem(dep, sensorcq.Config{Approach: sensorcq.FilterSplitForward})
//	defer sys.Close()
//
// # Subscription lifecycle
//
// Subscriptions are continuous queries with a full lifecycle. Subscribe
// returns a *SubscriptionHandle that streams results as they are produced
// and can retract the query again; Unsubscribe propagates the retraction
// through the whole network (stored operators are removed along the reverse
// forwarding paths, operators that were shared or subsumed by the retracted
// query are re-exposed for their remaining dependants) and closes the
// handle's delivery channel:
//
//	handle, err := sys.Subscribe(userNode, sub)         // register
//	if err != nil { ... }                               // e.g. ErrDuplicateSubscription
//	go func() {
//	    for d := range handle.Deliveries() {            // stream results (push)
//	        fmt.Println("complex event:", d.Events)
//	    }                                               // loop ends at Unsubscribe
//	}()
//	_ = sys.Publish(reading)                            // results flow to the handle
//	_ = handle.Unsubscribe()                            // retract network-wide
//
// After Unsubscribe returns, a replayed trace produces zero further
// deliveries for the retracted subscription and strictly less event traffic;
// the handle's counters (Delivered, DroppedPushes) and pull log (Log,
// System.DeliveriesFor) remain readable. Failures on this surface are typed
// sentinel errors — ErrUnknownSensor, ErrClosed, ErrUnsubscribed,
// ErrDuplicateSubscription, ErrUnknownSubscription — matched with errors.Is.
//
// # Cancellation and backpressure
//
// Every mutating method has a context-aware variant (SubscribeContext,
// PublishContext, PublishAtContext, ReplayRoundsContext,
// ReplayTraceContext, CloseContext) whose context bounds the wait for
// network-wide propagation; the plain forms delegate with
// context.Background() at zero extra cost. Cancellation aborts the wait
// with the context's error, never corrupts the network: a cancelled
// Subscribe retracts its half-propagated registration, a cancelled Publish
// lets the reading finish propagating on a later drain. The delivery
// channel of a handle applies one of three backpressure policies when the
// consumer falls behind — DropNewest (the default, count-and-drop),
// DropOldest, or BlockWithTimeout — selected per subscription with
// WithBackpressure. Servers wrapping a System for remote consumers (see
// cmd/cqd and internal/server) are the intended users of both knobs.
package sensorcq

import (
	"sensorcq/internal/agg"
	"sensorcq/internal/dataset"
	"sensorcq/internal/experiment"
	"sensorcq/internal/geom"
	"sensorcq/internal/model"
	"sensorcq/internal/netsim"
	"sensorcq/internal/topology"
	"sensorcq/internal/workload"
)

// Core model types, re-exported for users of the public API.
type (
	// AttributeType identifies a kind of measurement (temperature, ...).
	AttributeType = model.AttributeType
	// SensorID identifies a physical sensor (data source).
	SensorID = model.SensorID
	// SubscriptionID identifies a subscription or correlation operator.
	SubscriptionID = model.SubscriptionID
	// Timestamp is a logical time value in trace units (seconds).
	Timestamp = model.Timestamp
	// Sensor is a data source of a fixed type at a known location.
	Sensor = model.Sensor
	// Advertisement announces a sensor to the network.
	Advertisement = model.Advertisement
	// Event is one sensor reading.
	Event = model.Event
	// ComplexEvent is a set of time-correlated readings matching a
	// subscription.
	ComplexEvent = model.ComplexEvent
	// AttributeFilter is a range condition over an attribute type.
	AttributeFilter = model.AttributeFilter
	// SensorFilter is a range condition bound to a specific sensor.
	SensorFilter = model.SensorFilter
	// Subscription is a user subscription or correlation operator.
	Subscription = model.Subscription

	// Interval is a closed numeric interval.
	Interval = geom.Interval
	// Point is a location in the 2D plane.
	Point = geom.Point2D
	// Region is an axis-aligned rectangle in the location domain.
	Region = geom.Region

	// NodeID identifies a processing node.
	NodeID = topology.NodeID
	// Graph is the acyclic processing-node network.
	Graph = topology.Graph
	// Deployment is a generated network plus its sensors.
	Deployment = topology.Deployment
	// DeploymentConfig parameterises deployment generation.
	DeploymentConfig = topology.DeploymentConfig

	// Delivery is a complex event handed to a subscribing user.
	Delivery = netsim.Delivery
	// AggregateResult is one finalised window of an aggregate query,
	// carried by a Delivery in place of complex events.
	AggregateResult = netsim.AggregateResult
	// AggregateSpec turns a subscription into a windowed GROUP-BY-time
	// aggregate query (see NewAggregateSubscription).
	AggregateSpec = model.AggregateSpec
	// AggregateFunc names an aggregate function (AggCount, AggSum, ...).
	AggregateFunc = agg.Func
	// DeliveryMode selects the replay delivery semantics (quiescent or
	// pipelined).
	DeliveryMode = netsim.DeliveryMode

	// TraceConfig parameterises synthetic trace generation.
	TraceConfig = dataset.Config
	// Trace is a generated measurement trace.
	Trace = dataset.Trace
	// TraceStats summarises a trace's per-attribute value distribution —
	// the only part of a trace the workload generator consumes.
	TraceStats = dataset.Stats
	// TraceStreamer generates a trace one round at a time without
	// materialising it; rounds alias a reusable buffer.
	TraceStreamer = dataset.Streamer
	// AttributeProfile describes the synthetic behaviour of one attribute.
	AttributeProfile = dataset.AttributeProfile
	// WorkloadConfig parameterises subscription-workload generation.
	WorkloadConfig = workload.Config
	// PlacedSubscription is a generated subscription plus its user's node.
	PlacedSubscription = workload.Placed
	// WorkloadStream generates subscriptions one at a time without
	// materialising the whole workload.
	WorkloadStream = workload.Stream

	// Scenario describes one of the paper's experimental setups.
	Scenario = experiment.Scenario
	// ExperimentOptions tweaks an experiment run.
	ExperimentOptions = experiment.Options
	// Result is the outcome of an experiment run.
	Result = experiment.Result
	// ApproachSeries is one approach's measurement series.
	ApproachSeries = experiment.ApproachSeries
	// SeriesPoint is one measurement point of a series.
	SeriesPoint = experiment.SeriesPoint
)

// The paper's five SensorScope measurement types.
const (
	AmbientTemperature = model.AmbientTemperature
	SurfaceTemperature = model.SurfaceTemperature
	RelativeHumidity   = model.RelativeHumidity
	WindSpeed          = model.WindSpeed
	WindDirection      = model.WindDirection
)

// The replay delivery semantics of Config.Delivery: Quiescent fully
// propagates every event before the next one is injected (the deterministic
// baseline); Pipelined injects a whole measurement round before draining,
// letting a concurrent System evaluate the round in parallel; Windowed
// additionally overlaps up to Config.Lag+1 successive rounds in flight,
// gated on a network watermark, so the concurrent engine never idles at a
// round boundary.
const (
	Quiescent = netsim.Quiescent
	Pipelined = netsim.Pipelined
	Windowed  = netsim.Windowed
)

// ParseDeliveryMode maps the CLI spelling of a delivery mode ("quiescent",
// "pipelined", "windowed") onto its value.
func ParseDeliveryMode(s string) (DeliveryMode, error) { return netsim.ParseDeliveryMode(s) }

// DeliveryModeNames returns the CLI spellings of every delivery mode; CLIs
// use it to print usage messages that stay in sync with the engine.
func DeliveryModeNames() []string { return netsim.DeliveryModeNames() }

// The aggregate functions of a windowed aggregate query. AggQuantile uses a
// mergeable q-digest sketch with rank error ε = Bits/K unless the spec's
// Exact flag selects the ship-every-reading baseline.
const (
	AggCount    = agg.Count
	AggSum      = agg.Sum
	AggMin      = agg.Min
	AggMax      = agg.Max
	AggMean     = agg.Mean
	AggQuantile = agg.Quantile
)

// ParseAggregateFunc maps the wire spelling of an aggregate function
// ("count", "sum", "min", "max", "mean", "quantile") onto its value.
func ParseAggregateFunc(s string) (AggregateFunc, error) { return agg.ParseFunc(s) }

// AggregateFuncNames returns the wire spellings of every aggregate function.
func AggregateFuncNames() []string { return agg.FuncNames() }

// NewAggregateSubscription builds a windowed GROUP-BY-time continuous
// aggregate query: one attribute filter bound to a region, folded per
// tumbling window of spec.WindowRounds measurement rounds with the spec's
// aggregate function. Register it with System.SubscribeAggregate; each
// finalised window arrives on the handle's delivery channel as a Delivery
// whose Aggregate field carries the result.
func NewAggregateSubscription(id SubscriptionID, filter AttributeFilter, region Region, spec AggregateSpec) (*Subscription, error) {
	return model.NewAggregateSubscription(id, filter, region, spec)
}

// NoSpatialConstraint disables the spatial correlation distance of an
// abstract subscription (δl = ∞).
var NoSpatialConstraint = model.NoSpatialConstraint

// DefaultAttributes returns the paper's five attribute types.
func DefaultAttributes() []AttributeType { return model.DefaultAttributes() }

// DefaultAttributeProfiles returns the synthetic generation profiles of the
// five default attribute types.
func DefaultAttributeProfiles() []AttributeProfile { return dataset.DefaultProfiles() }

// NewInterval returns the closed interval [min, max] (bounds are swapped if
// given in the wrong order).
func NewInterval(min, max float64) Interval { return geom.NewInterval(min, max) }

// NewRegion returns the rectangle spanned by two opposite corners.
func NewRegion(x0, y0, x1, y1 float64) Region { return geom.NewRegion(x0, y0, x1, y1) }

// RegionAround returns the square region of half-width radius centred on p.
func RegionAround(p Point, radius float64) Region { return geom.RegionAround(p, radius) }

// Everywhere returns the unbounded region (no spatial constraint).
func Everywhere() Region { return geom.WholePlane() }

// NewIdentifiedSubscription builds a subscription over explicitly named
// sensors with the given temporal correlation distance δt.
func NewIdentifiedSubscription(id SubscriptionID, filters []SensorFilter, deltaT Timestamp) (*Subscription, error) {
	return model.NewIdentifiedSubscription(id, filters, deltaT)
}

// NewAbstractSubscription builds a subscription over attribute types bound
// to a region, with temporal correlation distance δt and spatial correlation
// distance δl (use NoSpatialConstraint to disable the latter).
func NewAbstractSubscription(id SubscriptionID, filters []AttributeFilter, region Region, deltaT Timestamp, deltaL float64) (*Subscription, error) {
	return model.NewAbstractSubscription(id, filters, region, deltaT, deltaL)
}

// GenerateDeployment builds a SensorScope-like deployment: sensor nodes
// grouped behind base stations, wired into an acyclic processing network.
func GenerateDeployment(cfg DeploymentConfig) (*Deployment, error) {
	return topology.GenerateDeployment(cfg)
}

// GenerateTrace produces a synthetic measurement trace for a deployment.
func GenerateTrace(dep *Deployment, cfg TraceConfig) (*Trace, error) {
	return dataset.Generate(dep, cfg)
}

// NewTraceStreamer prepares round-by-round trace generation: the same rounds
// GenerateTrace would build, produced one at a time into a reusable buffer.
func NewTraceStreamer(dep *Deployment, cfg TraceConfig) (*TraceStreamer, error) {
	return dataset.NewStreamer(dep, cfg)
}

// GenerateWorkload produces subscriptions the way the paper's evaluation
// does: ranges centred on the trace's medians with Pareto-distributed
// widths, targeting every sensor group evenly.
func GenerateWorkload(dep *Deployment, trace *Trace, cfg WorkloadConfig) ([]PlacedSubscription, error) {
	return workload.Generate(dep, trace, cfg)
}

// NewWorkloadStream prepares one-at-a-time subscription generation from
// trace statistics (see TraceStreamer.Stats); it yields exactly the
// subscriptions GenerateWorkload would build for the same inputs.
func NewWorkloadStream(dep *Deployment, st TraceStats, roundInterval Timestamp, cfg WorkloadConfig) (*WorkloadStream, error) {
	return workload.NewStream(dep, st, roundInterval, cfg)
}
