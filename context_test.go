package sensorcq

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackpressureModes pins the three sink policies of WithBackpressure on
// a one-slot buffer with no consumer: DropNewest keeps the oldest delivery,
// DropOldest keeps the newest, and BlockWithTimeout waits out its timeout
// before counting the drop. The pull log stays complete under every mode.
func TestBackpressureModes(t *testing.T) {
	deliver := func(t *testing.T, h *SubscriptionHandle, sys *System) {
		t.Helper()
		// Three matching pairs, far enough apart that they correlate into
		// exactly three complex events (seqs {1,2}, {3,4}, {5,6}).
		for i := 0; i < 3; i++ {
			if err := sys.Replay(matchingPair(uint64(1+2*i), Timestamp(100*(i+1)))); err != nil {
				t.Fatal(err)
			}
		}
		if got := h.Delivered(); got != 3 {
			t.Fatalf("delivered = %d, want 3", got)
		}
	}

	t.Run("drop_newest", func(t *testing.T) {
		dep := buildWalkthroughDeployment(t)
		sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
			WithSinkBuffer(1), WithBackpressure(DropNewest, 0))
		if err != nil {
			t.Fatal(err)
		}
		deliver(t, h, sys)
		if got := h.DroppedPushes(); got != 2 {
			t.Errorf("dropped pushes = %d, want 2", got)
		}
		// The buffered delivery is the first one: later ones were refused.
		d := <-h.Deliveries()
		if seqs := d.Events.Seqs(); len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
			t.Errorf("buffered delivery seqs = %v, want [1 2] (oldest kept)", seqs)
		}
		if got := len(h.Log()); got != 3 {
			t.Errorf("pull log = %d deliveries, want 3 (push drops never lose history)", got)
		}
	})

	t.Run("drop_oldest", func(t *testing.T) {
		dep := buildWalkthroughDeployment(t)
		sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
			WithSinkBuffer(1), WithBackpressure(DropOldest, 0))
		if err != nil {
			t.Fatal(err)
		}
		deliver(t, h, sys)
		if got := h.DroppedPushes(); got != 2 {
			t.Errorf("dropped pushes = %d, want 2", got)
		}
		// The buffered delivery is the last one: older ones were evicted.
		d := <-h.Deliveries()
		if seqs := d.Events.Seqs(); len(seqs) != 2 || seqs[0] != 5 || seqs[1] != 6 {
			t.Errorf("buffered delivery seqs = %v, want [5 6] (newest kept)", seqs)
		}
		if got := len(h.Log()); got != 3 {
			t.Errorf("pull log = %d deliveries, want 3", got)
		}
	})

	t.Run("block_with_timeout", func(t *testing.T) {
		dep := buildWalkthroughDeployment(t)
		sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
			WithSinkBuffer(1), WithBackpressure(BlockWithTimeout, 20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		// No consumer: the second delivery blocks for the timeout, then is
		// counted as dropped.
		start := time.Now()
		for i := 0; i < 2; i++ {
			if err := sys.Replay(matchingPair(uint64(1+2*i), Timestamp(100*(i+1)))); err != nil {
				t.Fatal(err)
			}
		}
		if waited := time.Since(start); waited < 20*time.Millisecond {
			t.Errorf("blocked delivery returned after %v, want >= the 20ms timeout", waited)
		}
		if got := h.DroppedPushes(); got != 1 {
			t.Errorf("dropped pushes = %d, want 1 (timed out)", got)
		}
		// With a consumer the block resolves without dropping.
		go func() {
			for range h.Deliveries() {
			}
		}()
		if err := sys.Replay(matchingPair(5, 300)); err != nil {
			t.Fatal(err)
		}
		if got := h.DroppedPushes(); got != 1 {
			t.Errorf("dropped pushes with consumer = %d, want still 1", got)
		}
	})

	t.Run("invalid_mode", func(t *testing.T) {
		dep := buildWalkthroughDeployment(t)
		sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		if _, err := sys.Subscribe(5, walkthroughSub(t, "q"), WithBackpressure(BackpressureMode(99), 0)); err == nil {
			t.Error("Subscribe with unknown backpressure mode should fail")
		}
	})
}

// TestParseBackpressureMode pins the wire spellings of the three modes.
func TestParseBackpressureMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BackpressureMode
	}{
		{"", DropNewest},
		{"drop_newest", DropNewest},
		{"drop_oldest", DropOldest},
		{"block", BlockWithTimeout},
	} {
		mode, err := ParseBackpressureMode(tc.in)
		if err != nil || mode != tc.want {
			t.Errorf("ParseBackpressureMode(%q) = (%v, %v), want %v", tc.in, mode, err, tc.want)
		}
		if tc.in != "" && mode.String() != tc.in {
			t.Errorf("round trip %q -> %v -> %q", tc.in, mode, mode.String())
		}
	}
	if _, err := ParseBackpressureMode("bogus"); err == nil {
		t.Error("unknown spelling should fail")
	}
}

// TestContextCancellationSequential verifies that an already-cancelled
// context aborts every mutating call on the sequential runtime with
// context.Canceled, without corrupting the network: a cancelled Subscribe
// retracts itself, and the system keeps working afterwards.
func TestContextCancellationSequential(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := sys.SubscribeContext(cancelled, 5, walkthroughSub(t, "q")); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled SubscribeContext = %v, want context.Canceled", err)
	}
	if _, err := sys.HandleByID("q"); !errors.Is(err, ErrUnknownSubscription) {
		t.Errorf("cancelled Subscribe left a registered handle: %v", err)
	}
	if err := sys.PublishContext(cancelled, matchingPair(1, 100)[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled PublishContext = %v, want context.Canceled", err)
	}
	if err := sys.ReplayRoundsContext(cancelled, [][]Event{matchingPair(3, 200)}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ReplayRoundsContext = %v, want context.Canceled", err)
	}

	// The cancelled registration was compensated: the same ID registers
	// cleanly and the system delivers as if the aborted calls never happened.
	h, err := sys.Subscribe(5, walkthroughSub(t, "q"))
	if err != nil {
		t.Fatalf("re-subscribe after cancelled Subscribe: %v", err)
	}
	if err := sys.Replay(matchingPair(5, 300)); err != nil {
		t.Fatal(err)
	}
	if got := h.Delivered(); got != 1 {
		t.Errorf("delivered after recovery = %d, want 1", got)
	}
}

// TestContextCancellationBlocked verifies the acceptance contract on the
// concurrent runtime: a Publish or Subscribe blocked behind a stalled
// consumer (one-slot sink in block mode, nobody reading) aborts with
// context.Canceled when its context is cancelled, and the network finishes
// the in-flight work on the next drain.
func TestContextCancellationBlocked(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}

	// A subscription whose deliveries block the pushing node: one-slot
	// buffer, block mode with a timeout far beyond the test horizon.
	h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
		WithSinkBuffer(1), WithBackpressure(BlockWithTimeout, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// First pair fills the buffer without blocking.
	if err := sys.Replay(matchingPair(1, 100)); err != nil {
		t.Fatal(err)
	}

	// The second pair's delivery blocks node 5's worker, so propagation
	// cannot reach quiescence and PublishContext hangs in its drain until
	// the context is cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	if err := sys.PublishContext(ctx, matchingPair(3, 200)[0]); err != nil {
		t.Fatalf("publish of the non-correlating half: %v", err)
	}
	err = sys.PublishContext(ctx, matchingPair(3, 200)[1])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked PublishContext = %v, want context.Canceled", err)
	}

	// A Subscribe behind the same stalled worker also aborts.
	ctx2, cancel2 := context.WithCancel(context.Background())
	timer2 := time.AfterFunc(50*time.Millisecond, cancel2)
	defer timer2.Stop()
	if _, err := sys.SubscribeContext(ctx2, 5, walkthroughSub(t, "late")); !errors.Is(err, context.Canceled) {
		t.Fatalf("blocked SubscribeContext = %v, want context.Canceled", err)
	}

	// Unblock the consumer; the in-flight delivery completes and Close
	// drains everything (the cancelled registration's compensation included).
	go func() {
		for range h.Deliveries() {
		}
	}()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if got := h.Delivered(); got != 2 {
		t.Errorf("delivered after drain = %d, want 2 (the blocked delivery completed)", got)
	}
	if _, err := sys.HandleByID("late"); !errors.Is(err, ErrUnknownSubscription) {
		t.Errorf("cancelled Subscribe left a registered handle: %v", err)
	}
}

// TestUnsubscribePromptWithBlockedSink pins the backpressure fix: an
// Unsubscribe racing a full BlockWithTimeout sink must return promptly —
// the blocked delivery wait is aborted up front (it no longer holds the
// handle lock, and on the concurrent runtime it no longer stalls the worker
// the retraction has to drain past) instead of being waited out for up to
// the full backpressure timeout.
func TestUnsubscribePromptWithBlockedSink(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
		WithSinkBuffer(1), WithBackpressure(BlockWithTimeout, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the one-slot buffer, then stall node 5's worker on a second
	// delivery (nobody consumes).
	if err := sys.Replay(matchingPair(1, 100)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(50*time.Millisecond, cancel)
	defer timer.Stop()
	_ = sys.PublishContext(ctx, matchingPair(3, 200)[0])
	_ = sys.PublishContext(ctx, matchingPair(3, 200)[1])

	start := time.Now()
	if err := h.Unsubscribe(); err != nil {
		t.Fatalf("Unsubscribe with blocked sink: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("Unsubscribe took %v, want prompt return (not the 1h backpressure timeout)", waited)
	}
	// The channel closed; both deliveries are in the pull log either way.
	if _, open := <-h.Deliveries(); open {
		// One buffered delivery may drain first; the channel must then close.
		if _, open := <-h.Deliveries(); open {
			t.Error("delivery channel still open after Unsubscribe")
		}
	}
}

// TestCloseContextBound verifies that CloseContext gives up on the drain at
// its context's deadline but still closes the system: handles terminate and
// later mutations fail with ErrClosed.
func TestCloseContextBound(t *testing.T) {
	dep := buildWalkthroughDeployment(t)
	sys, err := NewSystem(dep, Config{Approach: FilterSplitForward, Seed: 1, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.Subscribe(5, walkthroughSub(t, "q"),
		WithSinkBuffer(1), WithBackpressure(BlockWithTimeout, 2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Fill the buffer, then block the worker on a second delivery.
	if err := sys.Replay(matchingPair(1, 100)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	_ = sys.PublishContext(ctx, matchingPair(3, 200)[0])
	_ = sys.PublishContext(ctx, matchingPair(3, 200)[1])

	cctx, ccancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer ccancel()
	if err := sys.CloseContext(cctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("CloseContext with stalled drain = %v, want context.DeadlineExceeded", err)
	}
	if err := sys.Publish(matchingPair(5, 300)[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after timed-out Close = %v, want ErrClosed", err)
	}
	// The handle's channel still closes (after the blocked push resolves).
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-h.Deliveries():
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("handle channel never closed after CloseContext")
		}
	}
}
